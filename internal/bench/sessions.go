package bench

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"wls"
	"wls/internal/cluster"
	"wls/internal/ejb"
	"wls/internal/metrics"
	"wls/internal/rmi"
	"wls/internal/servlet"
	"wls/internal/workload"
)

func init() {
	register(Experiment{ID: "E06", Title: "In-memory session replication with web-server routing (Fig 2)",
		Source: "§3.2 + Fig 2", Run: runE06})
	register(Experiment{ID: "E07", Title: "In-memory session replication with external routing (Fig 3)",
		Source: "§3.2 + Fig 3", Run: runE07})
	register(Experiment{ID: "E08", Title: "Delta on transaction boundary vs delta per update",
		Source: "§3.2: customers prefer tx-boundary deltas despite the rollback anomaly", Run: runE08})
	register(Experiment{ID: "E09", Title: "Ring placement of secondaries",
		Source: "§3.2: preferred replication group on a different machine", Run: runE09})
}

// countServlet increments a session counter.
// pinFirst orders the named server first (deterministic primaries).
type pinFirst string

func (p pinFirst) Order(_ context.Context, _ string, cands []cluster.MemberInfo) []cluster.MemberInfo {
	out := make([]cluster.MemberInfo, 0, len(cands))
	for _, c := range cands {
		if c.Name == string(p) {
			out = append(out, c)
		}
	}
	for _, c := range cands {
		if c.Name != string(p) {
			out = append(out, c)
		}
	}
	return out
}

func countServlet(r *servlet.Request) servlet.Response {
	n, _ := strconv.Atoi(r.Session.Get("n"))
	n++
	r.Session.Set("n", strconv.Itoa(n))
	return servlet.Response{Body: []byte(strconv.Itoa(n))}
}

// sessionCluster builds engines on every server.
func sessionCluster(servers int) *wls.Cluster {
	c, err := wls.New(wls.Options{Servers: servers, RealClock: true})
	if err != nil {
		panic(err)
	}
	for _, s := range c.Servers {
		s.Web.Handle("/cart", countServlet)
	}
	c.Settle(3)
	return c
}

// runE06: sessions through the Fig 2 proxy plug-in; kill primaries
// mid-session and measure continuity and failover cost.
func runE06() *Table {
	t := &Table{ID: "E06", Title: "Fig 2: plug-in routing failover",
		Source:  "§3.2",
		Columns: []string{"phase", "requests", "state_preserved", "failover_latency"},
		Notes:   "after the primary dies, the plug-in routes to the secondary named in the cookie; the session continues with no lost updates and one promotion"}

	c := sessionCluster(3)
	defer c.Stop()
	proxy := c.ProxyPlugin("web:80")
	ctx := context.Background()

	// Steady state.
	var steady metrics.Histogram
	resp, err := proxy.Route(ctx, "/cart", "", nil)
	if err != nil {
		panic(err)
	}
	cookie := resp.Cookie
	const warm = 50
	for i := 2; i <= warm; i++ {
		t0 := wall.Now()
		resp, err = proxy.Route(ctx, "/cart", cookie, nil)
		if err != nil {
			panic(err)
		}
		steady.RecordDuration(wall.Since(t0))
		cookie = resp.Cookie
	}
	t.AddRow("steady", warm, "yes", time.Duration(steady.Mean()).Round(time.Microsecond))

	// Failover: crash the primary, next request promotes the secondary.
	ck, _ := servlet.DecodeCookie(cookie)
	c.Crash(ck.Primary)
	t0 := wall.Now()
	resp, err = proxy.Route(ctx, "/cart", cookie, nil)
	failoverLatency := wall.Since(t0)
	if err != nil {
		panic(err)
	}
	preserved := string(resp.Body) == strconv.Itoa(warm+1)
	t.AddRow("failover", 1, fmt.Sprint(preserved), failoverLatency.Round(time.Microsecond))

	// Post-failover steady state on the new pair.
	cookie = resp.Cookie
	var after metrics.Histogram
	for i := 0; i < 20; i++ {
		t1 := wall.Now()
		resp, err = proxy.Route(ctx, "/cart", cookie, nil)
		if err != nil {
			panic(err)
		}
		after.RecordDuration(wall.Since(t1))
		cookie = resp.Cookie
	}
	t.AddRow("post-failover", 20, "yes", time.Duration(after.Mean()).Round(time.Microsecond))
	return t
}

// runE07: the same workload through the Fig 3 external appliance.
func runE07() *Table {
	t := &Table{ID: "E07", Title: "Fig 3: external-routing failover",
		Source:  "§3.2",
		Columns: []string{"phase", "state_preserved", "recovered_via", "secondary_unchanged"},
		Notes:   "affinity switches to an arbitrary server, which fetches state from the secondary named in the cookie and leaves the secondary in place"}

	c := sessionCluster(3)
	defer c.Stop()
	lb := c.ExternalLB("appliance:80")
	ctx := context.Background()

	resp, err := lb.Route(ctx, "client-1", "/cart", "", nil)
	if err != nil {
		panic(err)
	}
	cookie := resp.Cookie
	for i := 0; i < 10; i++ {
		resp, err = lb.Route(ctx, "client-1", "/cart", cookie, nil)
		if err != nil {
			panic(err)
		}
		cookie = resp.Cookie
	}
	before, _ := servlet.DecodeCookie(cookie)
	c.Crash(before.Primary)

	resp, err = lb.Route(ctx, "client-1", "/cart", cookie, nil)
	if err != nil {
		panic(err)
	}
	after, _ := servlet.DecodeCookie(resp.Cookie)
	preserved := string(resp.Body) == "12"
	via := "promotion-on-secondary"
	if after.Primary != before.Secondary {
		via = "fetch-from-secondary"
	}
	t.AddRow("failover", fmt.Sprint(preserved), via,
		fmt.Sprint(after.Secondary == before.Secondary || after.Primary == before.Secondary))
	return t
}

// runE08: stateful session beans under the two delta policies: throughput
// ratio and the rollback anomaly.
func runE08() *Table {
	t := &Table{ID: "E08", Title: "Replication delta policies",
		Source:  "§3.2",
		Columns: []string{"policy", "updates/s", "replica_msgs", "rollback_anomaly"},
		Notes:   "per-update ships ~Nx more replica traffic for N updates per method; per-tx risks rolling back to the last boundary on failover — the trade customers accept"}

	for _, policy := range []ejb.DeltaPolicy{ejb.DeltaPerTx, ejb.DeltaPerUpdate} {
		c, err := wls.New(wls.Options{Servers: 3, RealClock: true})
		if err != nil {
			panic(err)
		}
		var home *ejb.StatefulHome
		for _, s := range c.Servers {
			h := s.EJB.DeployStateful(ejb.StatefulSpec{
				Name:   "Cart",
				Deltas: policy,
				Methods: map[string]ejb.StatefulMethod{
					// Each call makes 4 updates: per-update ships 4 deltas,
					// per-tx ships 1.
					"add": func(sc *ejb.StatefulCtx, args []byte) ([]byte, error) {
						n, _ := strconv.Atoi(sc.Get("count"))
						sc.Set("count", strconv.Itoa(n+1))
						sc.Set("a", string(args))
						sc.Set("b", string(args))
						sc.Set("c", string(args))
						return []byte(strconv.Itoa(n + 1)), nil
					},
					"count": func(sc *ejb.StatefulCtx, args []byte) ([]byte, error) {
						return []byte(sc.Get("count")), nil
					},
				},
			})
			if home == nil {
				h2 := h
				home = h2
			}
		}
		c.Settle(2)

		// Pin the primary to server-2: the client runs on server-1, so the
		// anomaly check can crash the primary without killing the client.
		h, err := home.Create(context.Background(), rmi.WithPolicy(pinFirst("server-2")))
		if err != nil {
			panic(err)
		}
		const calls = 200
		start := wall.Now()
		for i := 0; i < calls; i++ {
			if _, err := h.Invoke(context.Background(), "add", []byte("x")); err != nil {
				panic(err)
			}
		}
		elapsed := wall.Since(start)
		var replicaMsgs int64
		for _, s := range c.Servers {
			replicaMsgs += s.Metrics().Counter("ejb.stateful.replica_updates").Value()
		}

		// Anomaly check: drop one delta ship, crash the primary, observe
		// the count rolled back one boundary (per-tx) or not (per-update
		// loses only the final Set).
		var primaryContainer *ejb.Container
		for _, s := range c.Servers {
			if s.Name == h.Primary() {
				primaryContainer = s.EJB
			}
		}
		primaryContainer.StatefulStore("Cart").DropNextShips(5)
		h.Invoke(context.Background(), "add", []byte("y"))
		c.Crash(h.Primary())
		out, err := h.Invoke(context.Background(), "count", nil)
		anomaly := "no"
		if err != nil {
			anomaly = "failover failed: " + err.Error()
		} else if string(out) != strconv.Itoa(calls+1) {
			anomaly = fmt.Sprintf("yes (count %s after %d adds)", out, calls+1)
		}

		name := "delta-per-tx"
		if policy == ejb.DeltaPerUpdate {
			name = "delta-per-update"
		}
		t.AddRow(name, fmt.Sprintf("%.0f", float64(calls)/elapsed.Seconds()), replicaMsgs, anomaly)
		c.Stop()
	}
	return t
}

// runE09: measure ring placement over many random configurations — this
// experiment is also covered by property tests; the bench reports the
// placement quality statistics.
func runE09() *Table {
	t := &Table{ID: "E09", Title: "Ring placement of secondaries",
		Source:  "§3.2",
		Columns: []string{"configs", "placed", "in_preferred_group", "crossed_machines", "violations"},
		Notes:   "every placement is on a different machine; the most-preferred satisfiable group always wins (violations must be 0)"}

	rng := workload.NewUniform(3, 1<<30)
	_ = rng
	const trials = 2000
	placed, inGroup, crossed, violations := 0, 0, 0, 0
	groups := []string{"gA", "gB", "gC"}
	seed := int64(12345)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := int(seed>>33) % n
		if v < 0 {
			v = -v
		}
		return v
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + next(10)
		var cands []cluster.MemberInfo
		for i := 0; i < n; i++ {
			cands = append(cands, cluster.MemberInfo{
				Name:             fmt.Sprintf("s%02d", i),
				Machine:          fmt.Sprintf("m%d", next(4)),
				ReplicationGroup: groups[next(3)],
			})
		}
		self := cands[next(n)]
		self.PreferredSecondaryGroups = groups[:next(4)]
		sec, ok := cluster.ChooseSecondaryFrom(self, cands)
		if !ok {
			continue
		}
		placed++
		if sec.Machine != self.Machine {
			crossed++
		} else {
			violations++
		}
		for _, g := range self.PreferredSecondaryGroups {
			eligible := false
			for _, c := range cands {
				if c.Name != self.Name && c.Machine != self.Machine && c.ReplicationGroup == g {
					eligible = true
				}
			}
			if eligible {
				if sec.ReplicationGroup == g {
					inGroup++
				} else {
					violations++
				}
				break
			}
		}
	}
	t.AddRow(trials, placed, inGroup, crossed, violations)
	return t
}
