// Package bench is the experiment harness: one runnable experiment per
// figure and falsifiable claim of the paper, as indexed in DESIGN.md
// (E01–E28). Each experiment builds a cluster with the public wls façade,
// drives a workload, and emits a table whose *shape* (who wins, by what
// rough factor, where the crossover falls) is the reproduction target.
//
// The same experiments back both `go test -bench` (bench_test.go at the
// repository root) and the cmd/wlsbench binary.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"wls/internal/gossip"
	"wls/internal/vclock"
)

// wall is the clock experiments measure with. Benchmarks report real
// elapsed time, so this is the system wall clock — but routed through
// vclock.Clock, which keeps the package on the one sanctioned time
// abstraction (the walltime lint rule certifies it) and lets a simulation
// swap in a virtual clock.
var wall vclock.Clock = vclock.System

// Table is one experiment's output.
type Table struct {
	// ID is the experiment id (e.g. "E02").
	ID string
	// Title describes the experiment.
	Title string
	// Source cites the paper figure/section and claim.
	Source string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows.
	Rows [][]string
	// Notes carries the interpretation (which shape to look for).
	Notes string
}

// AddRow appends a row of stringable cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprint(c))
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table for terminal output.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "source: %s\n", t.Source)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "  %-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %s", c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Experiment is one registered experiment.
type Experiment struct {
	ID     string
	Title  string
	Source string
	Run    func() *Table
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// All returns every experiment, sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	e, ok := registry[strings.ToUpper(id)]
	return e, ok
}

// ratio formats a/b with two decimals ("inf" when b is 0).
func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", a/b)
}

// newBusOn builds an in-memory announcement bus on the given clock.
func newBusOn(clk vclock.Clock) *gossip.InMemory { return gossip.NewInMemory(clk, 1) }
