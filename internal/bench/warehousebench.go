package bench

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wls/internal/metrics"
	"wls/internal/store"
	"wls/internal/vclock"
	"wls/internal/warehouse"
	"wls/internal/workload"
)

func init() {
	register(Experiment{ID: "E24", Title: "Warehouse-style middle-tier copy (Fig 5)",
		Source: "§5.2: isolate the operational system; optimistic fulfilment", Run: runE24})
	register(Experiment{ID: "E25", Title: "Admission control: deny vs degrade vs self-tuning",
		Source: "§2.3: TP monitors deny; application servers must self-tune", Run: runE25})
}

// runE24 part 1: a local OLTP loop on the operational store while a remote
// read surge hits either the operational store directly or a middle-tier
// copy; part 2: fulfilment correctness against a stale copy.
func runE24() *Table {
	t := &Table{ID: "E24", Title: "Operational isolation via a middle-tier copy",
		Source:  "Fig 5 + §5.2",
		Columns: []string{"metric", "direct-to-operational", "via-middle-tier-copy"},
		Notes:   "routing the remote surge at the copy keeps the operational tier's latency flat; fulfilment stays exactly-right despite copy staleness (optimistic critical step)"}

	runSurge := func(useCopy bool) (localP99 time.Duration, surgeReads int64) {
		op := store.New("operational", vclock.System)
		const rows = 50
		for i := 0; i < rows; i++ {
			op.Put("flights", fmt.Sprintf("f%03d", i), map[string]string{"seats": "100"})
		}
		copyDB := store.New("copy", vclock.System)
		etl := warehouse.NewETL(op, copyDB, vclock.System, 50*time.Millisecond, nil, "flights")
		etl.InitialLoad("flights")
		etl.Start()
		defer etl.Stop()

		target := op
		if useCopy {
			target = copyDB
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var reads atomic.Int64
		for g := 0; g < 4; g++ { // the remote surge
			wg.Add(1)
			go func() {
				defer wg.Done()
				keys := workload.NewZipf(int64(g)+1, rows, 1.2)
				for {
					select {
					case <-stop:
						return
					default:
					}
					target.Scan("flights", func(r store.Row) bool { return r.Key == keys.Next() })
					reads.Add(1)
				}
			}()
		}

		// The local OLTP loop whose latency we protect.
		var hist metrics.Histogram
		for i := 0; i < 60; i++ {
			t0 := wall.Now()
			key := fmt.Sprintf("f%03d", i%rows)
			row, _ := op.Get("flights", key)
			sess := op.Session(fmt.Sprintf("oltp-%d", i))
			sess.UpdateVersioned("flights", key, row.Version, row.Fields)
			if err := sess.Commit(""); err != nil {
				panic(err)
			}
			hist.RecordDuration(wall.Since(t0))
			wall.Sleep(200 * time.Microsecond)
		}
		close(stop)
		wg.Wait()
		return time.Duration(hist.P99()), reads.Load()
	}

	directP99, directReads := runSurge(false)
	copyP99, copyReads := runSurge(true)
	t.AddRow("local OLTP p99", directP99.Round(10*time.Microsecond), copyP99.Round(10*time.Microsecond))
	t.AddRow("remote reads served", directReads, copyReads)

	// Part 2: fulfilment correctness with a stale copy.
	op := store.New("operational", vclock.System)
	op.Put("flights", "f1", map[string]string{"seats": "25"})
	copyDB := store.New("copy", vclock.System)
	etl := warehouse.NewETL(op, copyDB, vclock.System, time.Hour, nil, "flights") // never refresh: maximally stale
	etl.InitialLoad("flights")
	var sold, soldOut atomic.Int64
	workload.Clients(10, 5, func(cID, i int) {
		// Best-effort phase against the copy...
		copyDB.Get("flights", "f1")
		// ...critical step against the operational store.
		err := warehouse.FulfillWithRetry(op, "flights", "f1", "seats", 1,
			fmt.Sprintf("c%d-%d", cID, i), 100)
		if err == nil {
			sold.Add(1)
		} else if errors.Is(err, warehouse.ErrSoldOut) {
			soldOut.Add(1)
		}
	})
	row, _ := op.Get("flights", "f1")
	t.AddRow("seats sold (25 available, 50 wanted)", "-", fmt.Sprintf("%d sold, %d sold-out, %s left",
		sold.Load(), soldOut.Load(), row.Fields["seats"]))
	return t
}

// runE25 lives in admissionbench.go.
