package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"wls/internal/metrics"
	"wls/internal/vclock"
)

// wall is the clock user pacing runs on. Virtual users model real humans,
// so this is the system wall clock — routed through vclock.Clock, the one
// sanctioned time abstraction, which also lets a simulation swap in a
// virtual clock.
var wall vclock.Clock = vclock.System

// Op identifies one request a virtual user issues. The engine tracks
// session identity for the caller: User and Session together name a
// servlet session ("u3-s2"), SessionSeq is the request index within it
// (0 = first request, the one that creates the session).
type Op struct {
	User       int
	Session    int
	SessionSeq int
}

// DoFunc executes one request against the system under test and reports
// whether it succeeded. It is called from many goroutines.
type DoFunc func(op Op) error

// EngineConfig shapes a load run.
type EngineConfig struct {
	// Users is the virtual-user population.
	Users int
	// Arrivals staggers user ramp-in (closed loop) or spaces individual
	// requests (open loop). Nil means everyone starts at once / requests
	// are issued back-to-back.
	Arrivals Arrival
	// Think is the closed-loop pause between a response and the user's
	// next request (nil = none). Open loop ignores it: arrival times, not
	// completions, pace the offered load — that is what makes open loop
	// the saturation mode.
	Think *ServiceTime
	// SessionRequests is the session lifetime in requests: after this many
	// the user abandons the session and starts a fresh one (0 = one
	// session for the whole run).
	SessionRequests int
	// Requests bounds the run: per-user in closed loop, total in open
	// loop. 0 = bounded by Duration only.
	Requests int
	// Duration is an optional wall-clock cutoff (0 = run to Requests).
	Duration time.Duration
	// OpenLoop issues requests at arrival times regardless of outstanding
	// completions; closed loop (default) waits for each response.
	OpenLoop bool
	// MaxInFlight caps outstanding open-loop requests; arrivals beyond the
	// cap are counted Shed rather than issued (default 4096).
	MaxInFlight int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Users <= 0 {
		c.Users = 1
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
	return c
}

// Report summarizes a run.
type Report struct {
	Issued   int64
	OK       int64
	Errors   int64
	Shed     int64 // open-loop arrivals dropped at the MaxInFlight cap
	Sessions int64 // sessions started across all users
	Elapsed  time.Duration
	Latency  *metrics.Histogram // successful-request latency
}

// Engine drives virtual users against a system under test. Construct with
// NewEngine, then Run with the request callback.
type Engine struct {
	cfg EngineConfig
}

// NewEngine returns an engine for the given configuration.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// userState is one virtual user's session bookkeeping; open loop shares it
// across dispatch goroutines, hence the mutex.
type userState struct {
	mu      sync.Mutex
	session int
	seq     int
}

// next returns the user's next Op, rolling to a fresh session every
// SessionRequests requests.
func (u *userState) next(user, sessionRequests int, sessions *int64) Op {
	u.mu.Lock()
	defer u.mu.Unlock()
	if sessionRequests > 0 && u.seq >= sessionRequests {
		u.session++
		u.seq = 0
	}
	if u.seq == 0 {
		atomic.AddInt64(sessions, 1)
	}
	op := Op{User: user, Session: u.session, SessionSeq: u.seq}
	u.seq++
	return op
}

// Run executes the load and blocks until it drains. The engine runs in
// real time (the cluster under test may be on netsim, but user pacing is
// wall-clock), so keep Duration short in tests.
func (e *Engine) Run(do DoFunc) Report {
	cfg := e.cfg
	rep := Report{Latency: metrics.NewRegistry().Histogram("latency")}
	users := make([]userState, cfg.Users)
	start := wall.Now()
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}
	expired := func() bool {
		return !deadline.IsZero() && wall.Now().After(deadline)
	}
	issue := func(user int) {
		op := users[user].next(user, cfg.SessionRequests, &rep.Sessions)
		atomic.AddInt64(&rep.Issued, 1)
		t0 := wall.Now()
		if err := do(op); err != nil {
			atomic.AddInt64(&rep.Errors, 1)
		} else {
			atomic.AddInt64(&rep.OK, 1)
			rep.Latency.RecordDuration(wall.Since(t0))
		}
	}

	if cfg.OpenLoop {
		e.runOpen(&rep, issue, start, expired)
	} else {
		e.runClosed(issue, start, expired)
	}
	rep.Elapsed = wall.Since(start)
	return rep
}

// runClosed ramps Users goroutines in at arrival times; each then loops
// request → think until its budget or the deadline runs out.
func (e *Engine) runClosed(issue func(int), start time.Time, expired func() bool) {
	cfg := e.cfg
	var wg sync.WaitGroup
	var offset time.Duration
	for u := 0; u < cfg.Users; u++ {
		if cfg.Arrivals != nil && u > 0 {
			offset += cfg.Arrivals.Gap(offset)
		}
		wg.Add(1)
		go func(u int, startAt time.Duration) {
			defer wg.Done()
			if d := startAt - wall.Since(start); d > 0 {
				wall.Sleep(d)
			}
			for i := 0; cfg.Requests <= 0 || i < cfg.Requests; i++ {
				if expired() {
					return
				}
				issue(u)
				if cfg.Think != nil {
					wall.Sleep(cfg.Think.Next())
				}
			}
		}(u, offset)
	}
	wg.Wait()
}

// runOpen fires requests at arrival times without waiting for
// completions; outstanding work beyond MaxInFlight is shed.
func (e *Engine) runOpen(rep *Report, issue func(int), start time.Time, expired func() bool) {
	cfg := e.cfg
	var wg sync.WaitGroup
	slots := make(chan struct{}, cfg.MaxInFlight)
	total := 0
	// sched is the cumulative scheduled arrival offset. Sleeping only when
	// meaningfully ahead of schedule — and catching up burst-style when
	// behind — keeps the offered rate at the nominal rate even when
	// individual gaps are far below the sleep granularity (a 16k/s flash
	// crowd has 60µs gaps; time.Sleep cannot pace those one by one).
	var sched time.Duration
	for u := 0; ; u = (u + 1) % cfg.Users {
		if expired() {
			break
		}
		if cfg.Requests > 0 && total >= cfg.Requests {
			break
		}
		total++
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				defer func() { <-slots }()
				issue(u)
			}(u)
		default:
			atomic.AddInt64(&rep.Shed, 1)
		}
		if cfg.Arrivals != nil {
			sched += cfg.Arrivals.Gap(sched)
			if d := sched - wall.Since(start); d > 500*time.Microsecond {
				wall.Sleep(d)
			}
		}
	}
	wg.Wait()
}
