package workload

import (
	"math/rand"
	"sync"
	"time"
)

// Arrival produces inter-arrival gaps: the time between one virtual user
// (open loop: one request) entering the system and the next. All
// implementations are seeded and deterministic.
type Arrival interface {
	// Gap returns the delay before the next arrival. elapsed is the time
	// since the run started, letting time-varying processes (flash crowds)
	// shape their rate.
	Gap(elapsed time.Duration) time.Duration
}

// ConstantRate spaces arrivals evenly at the given rate.
type ConstantRate struct {
	Interval time.Duration
}

// Gap implements Arrival.
func (c ConstantRate) Gap(time.Duration) time.Duration { return c.Interval }

// Poisson models independent users: exponentially distributed
// inter-arrival gaps around a mean rate (arrivals per second).
type Poisson struct {
	mu   sync.Mutex
	rng  *rand.Rand
	mean time.Duration
}

// NewPoisson returns a Poisson process with the given arrivals-per-second
// rate.
func NewPoisson(seed int64, perSecond float64) *Poisson {
	if perSecond <= 0 {
		perSecond = 1
	}
	return &Poisson{
		rng:  rand.New(rand.NewSource(seed)),
		mean: time.Duration(float64(time.Second) / perSecond),
	}
}

// Gap implements Arrival.
func (p *Poisson) Gap(time.Duration) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.rng.ExpFloat64() * float64(p.mean))
}

// FlashCrowd wraps a base process and multiplies its rate (divides its
// gaps) by Factor during the [Start, Start+Width) window — the
// tail-at-saturation scenario E33's admission phase drives.
type FlashCrowd struct {
	Base   Arrival
	Start  time.Duration
	Width  time.Duration
	Factor float64 // rate multiplier during the crowd, e.g. 10
}

// Gap implements Arrival.
func (f FlashCrowd) Gap(elapsed time.Duration) time.Duration {
	g := f.Base.Gap(elapsed)
	if f.Factor > 1 && elapsed >= f.Start && elapsed < f.Start+f.Width {
		g = time.Duration(float64(g) / f.Factor)
	}
	return g
}
