package workload

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestClosedLoopBudgetAndSessions(t *testing.T) {
	eng := NewEngine(EngineConfig{Users: 4, Requests: 10, SessionRequests: 3})
	var mu sync.Mutex
	seen := map[int]map[int]int{} // user -> session -> requests
	rep := eng.Run(func(op Op) error {
		mu.Lock()
		defer mu.Unlock()
		if seen[op.User] == nil {
			seen[op.User] = map[int]int{}
		}
		if op.SessionSeq != seen[op.User][op.Session] {
			t.Errorf("user %d session %d: seq %d, want %d", op.User, op.Session, op.SessionSeq, seen[op.User][op.Session])
		}
		seen[op.User][op.Session]++
		return nil
	})
	if rep.Issued != 40 || rep.OK != 40 || rep.Errors != 0 {
		t.Fatalf("issued=%d ok=%d errs=%d, want 40/40/0", rep.Issued, rep.OK, rep.Errors)
	}
	// 10 requests at 3/session = sessions 0,1,2,3 per user.
	if rep.Sessions != 16 {
		t.Fatalf("sessions=%d, want 16", rep.Sessions)
	}
	for u, sessions := range seen {
		if len(sessions) != 4 {
			t.Fatalf("user %d ran %d sessions, want 4", u, len(sessions))
		}
	}
	if rep.Latency.Count() != 40 {
		t.Fatalf("latency samples=%d, want 40", rep.Latency.Count())
	}
}

func TestClosedLoopErrorsCounted(t *testing.T) {
	eng := NewEngine(EngineConfig{Users: 2, Requests: 5})
	boom := errors.New("boom")
	rep := eng.Run(func(op Op) error {
		if op.SessionSeq%2 == 1 {
			return boom
		}
		return nil
	})
	if rep.Issued != 10 || rep.Errors != 4 || rep.OK != 6 {
		t.Fatalf("issued=%d ok=%d errs=%d, want 10/6/4", rep.Issued, rep.OK, rep.Errors)
	}
}

func TestOpenLoopShedsAtCap(t *testing.T) {
	block := make(chan struct{})
	eng := NewEngine(EngineConfig{
		Users: 8, Requests: 50, OpenLoop: true, MaxInFlight: 2,
	})
	done := make(chan Report, 1)
	go func() {
		done <- eng.Run(func(Op) error {
			<-block
			return nil
		})
	}()
	time.Sleep(50 * time.Millisecond)
	close(block)
	rep := <-done
	if rep.Shed == 0 {
		t.Fatalf("open loop at MaxInFlight=2 shed nothing (issued=%d)", rep.Issued)
	}
	if rep.Issued+rep.Shed != 50 {
		t.Fatalf("issued+shed=%d, want 50", rep.Issued+rep.Shed)
	}
}

func TestPoissonArrivalsMeanRate(t *testing.T) {
	p := NewPoisson(1, 1000) // 1000/s → mean gap 1ms
	var total time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		total += p.Gap(0)
	}
	mean := total / n
	if mean < 700*time.Microsecond || mean > 1300*time.Microsecond {
		t.Fatalf("mean gap %v, want ≈1ms", mean)
	}
}

func TestFlashCrowdWindow(t *testing.T) {
	fc := FlashCrowd{
		Base:   ConstantRate{Interval: 10 * time.Millisecond},
		Start:  time.Second,
		Width:  time.Second,
		Factor: 10,
	}
	if g := fc.Gap(0); g != 10*time.Millisecond {
		t.Fatalf("pre-crowd gap %v", g)
	}
	if g := fc.Gap(1500 * time.Millisecond); g != time.Millisecond {
		t.Fatalf("in-crowd gap %v, want 1ms", g)
	}
	if g := fc.Gap(2500 * time.Millisecond); g != 10*time.Millisecond {
		t.Fatalf("post-crowd gap %v", g)
	}
}

func TestClosedLoopDeadline(t *testing.T) {
	eng := NewEngine(EngineConfig{Users: 2, Duration: 60 * time.Millisecond})
	start := time.Now()
	rep := eng.Run(func(Op) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline run took %v", el)
	}
	if rep.Issued == 0 {
		t.Fatal("deadline run issued nothing")
	}
}
