package workload

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestUniformCoversKeySpace(t *testing.T) {
	g := NewUniform(1, 10)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		k := g.Next()
		if !strings.HasPrefix(k, "key") {
			t.Fatalf("key format: %q", k)
		}
		seen[k] = true
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d keys, want 10", len(seen))
	}
}

func TestUniformDeterministicBySeed(t *testing.T) {
	a, b := NewUniform(7, 100), NewUniform(7, 100)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZipfSkewsTowardLowKeys(t *testing.T) {
	g := NewZipf(1, 1000, 1.5)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[g.Next()]++
	}
	if counts["key0"] < counts["key9"] {
		t.Fatalf("zipf not skewed: key0=%d key9=%d", counts["key0"], counts["key9"])
	}
	if counts["key0"] < 2000 {
		t.Fatalf("key0 only %d of 10000 at s=1.5", counts["key0"])
	}
}

func TestHotSpotFraction(t *testing.T) {
	g := NewHotSpot(1, 100, 0.8)
	hot := 0
	for i := 0; i < 10000; i++ {
		if g.Next() == "key0" {
			hot++
		}
	}
	if hot < 7500 || hot > 8500 {
		t.Fatalf("hot fraction = %d/10000, want ~8000", hot)
	}
}

func TestMixWriteFraction(t *testing.T) {
	m := NewMix(1, 0.3)
	writes := 0
	for i := 0; i < 10000; i++ {
		if m.IsWrite() {
			writes++
		}
	}
	if writes < 2700 || writes > 3300 {
		t.Fatalf("writes = %d/10000, want ~3000", writes)
	}
}

func TestServiceTimeConstant(t *testing.T) {
	s := NewServiceTime(1, time.Millisecond, 0)
	for i := 0; i < 10; i++ {
		if s.Next() != time.Millisecond {
			t.Fatal("cv=0 should be constant")
		}
	}
}

func TestServiceTimeVariabilityMean(t *testing.T) {
	s := NewServiceTime(1, time.Millisecond, 1)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := s.Next()
		if d < 0 {
			t.Fatal("negative service time")
		}
		sum += d
	}
	mean := sum / n
	if mean < 700*time.Microsecond || mean > 1300*time.Microsecond {
		t.Fatalf("mean = %v, want ~1ms", mean)
	}
}

func TestClientsClosedLoop(t *testing.T) {
	var mu sync.Mutex
	calls := map[[2]int]bool{}
	Clients(4, 25, func(c, i int) {
		mu.Lock()
		calls[[2]int{c, i}] = true
		mu.Unlock()
	})
	if len(calls) != 100 {
		t.Fatalf("calls = %d, want 100", len(calls))
	}
}
