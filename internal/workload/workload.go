// Package workload provides the request generators the experiment harness
// drives the system with: key distributions (uniform, Zipf, hot-spot),
// service-time distributions, read/write mixes, and closed-loop client
// pools. Everything is seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// KeyGen produces keys for a keyed workload.
type KeyGen interface {
	Next() string
}

// Uniform picks uniformly from n keys.
type Uniform struct {
	mu  sync.Mutex
	rng *rand.Rand
	n   int
}

// NewUniform returns a uniform generator over key0..key{n-1}.
func NewUniform(seed int64, n int) *Uniform {
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}
}

// Next implements KeyGen.
func (u *Uniform) Next() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	return fmt.Sprintf("key%d", u.rng.Intn(u.n))
}

// Zipf skews access toward low-numbered keys, the standard model for
// hot-entity workloads (E12's hot rows).
type Zipf struct {
	mu sync.Mutex
	z  *rand.Zipf
}

// NewZipf returns a Zipf generator over n keys with skew s (>1; larger is
// more skewed).
func NewZipf(seed int64, n int, s float64) *Zipf {
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Next implements KeyGen.
func (z *Zipf) Next() string {
	z.mu.Lock()
	defer z.mu.Unlock()
	return fmt.Sprintf("key%d", z.z.Uint64())
}

// HotSpot sends fraction hot of traffic to a single key.
type HotSpot struct {
	mu   sync.Mutex
	rng  *rand.Rand
	n    int
	frac float64
}

// NewHotSpot returns a generator sending frac of accesses to key0.
func NewHotSpot(seed int64, n int, frac float64) *HotSpot {
	return &HotSpot{rng: rand.New(rand.NewSource(seed)), n: n, frac: frac}
}

// Next implements KeyGen.
func (h *HotSpot) Next() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rng.Float64() < h.frac {
		return "key0"
	}
	return fmt.Sprintf("key%d", 1+h.rng.Intn(h.n-1))
}

// Mix decides read vs write per operation.
type Mix struct {
	mu        sync.Mutex
	rng       *rand.Rand
	writeFrac float64
}

// NewMix returns a mix with the given write fraction.
func NewMix(seed int64, writeFrac float64) *Mix {
	return &Mix{rng: rand.New(rand.NewSource(seed)), writeFrac: writeFrac}
}

// IsWrite decides the next operation's type.
func (m *Mix) IsWrite() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rng.Float64() < m.writeFrac
}

// ServiceTime produces per-request compute times.
type ServiceTime struct {
	mu   sync.Mutex
	rng  *rand.Rand
	mean time.Duration
	// cv is the coefficient of variation: 0 = constant, 1 ≈ exponential.
	cv float64
}

// NewServiceTime returns a generator with the given mean and variability.
func NewServiceTime(seed int64, mean time.Duration, cv float64) *ServiceTime {
	return &ServiceTime{rng: rand.New(rand.NewSource(seed)), mean: mean, cv: cv}
}

// Next returns the next service time.
func (s *ServiceTime) Next() time.Duration {
	if s.cv == 0 {
		return s.mean
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Exponential scaled toward the requested cv.
	exp := s.rng.ExpFloat64() * float64(s.mean)
	blend := s.cv*exp + (1-s.cv)*float64(s.mean)
	if blend < 0 {
		blend = 0
	}
	return time.Duration(blend)
}

// Clients runs a closed-loop client pool: n clients each issue requests
// back-to-back for the given iteration count, collecting into fn.
func Clients(n, perClient int, fn func(client, i int)) {
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				fn(c, i)
			}
		}()
	}
	wg.Wait()
}
