// Package cache implements the cached-service type of §3.3: data held in
// memory on many servers to satisfy reads, with a spectrum of consistency
// options, because "increased consistency generally comes at the expense of
// scalability, performance, and/or functionality, and a variety of options
// should be provided".
//
// The options, exactly as enumerated in the paper:
//
//   - TTL: "have each cache flush itself at regular intervals according to
//     a configured time-to-live value" — no inter-server communication.
//   - Flush-on-update: "flush the caches after each update completes, but
//     not within the updating transaction" — a bean-level flush signal on
//     the lightweight multicast bus; a window of staleness remains.
//   - Preloaded slices: "initially preload them with specified slices of
//     data and then to refresh the slices as updates occur", enabling
//     "querying through the cache in the manner of in-memory databases".
//
// Backdoor updates (applications sharing the database but bypassing the
// application server) are caught by "either triggers or log-sniffing":
// TriggerFlusher attaches a database trigger that broadcasts flushes, and
// Sniffer polls the store's change log from a checkpoint LSN.
//
// Dependency tracking maps backend rows to the cache entries computed from
// them (the paper's granularity-of-tracking discussion): entries register
// the (table, key) pairs they were derived from, and invalidation follows
// the map.
package cache

import (
	"sync"
	"time"

	"wls/internal/gossip"
	"wls/internal/metrics"
	"wls/internal/store"
	"wls/internal/vclock"
)

// Loader computes a cache entry from the backend; it returns the value (an
// opaque byte payload — relational rows, objects, HTML or XML per §3.3),
// the backend version it was derived from, and whether the key exists.
type Loader func(key string) (value []byte, version uint64, ok bool)

// Mode selects the consistency option.
type Mode int

// Consistency modes.
const (
	// ModeTTL flushes entries only when their time-to-live lapses.
	ModeTTL Mode = iota
	// ModeFlushOnUpdate additionally subscribes to bus flush signals
	// (sent by updaters after commit, outside the transaction).
	ModeFlushOnUpdate
)

// Config configures a cache.
type Config struct {
	// Name scopes the flush topic (typically the bean or page name).
	Name string
	// Mode selects the consistency option.
	Mode Mode
	// TTL is the entry time-to-live (0 = never expires by time).
	TTL time.Duration
}

// entry is one cached value.
type entry struct {
	value    []byte
	version  uint64
	loadedAt time.Time
}

// Cache is one server's in-memory copy for one named data set.
type Cache struct {
	cfg   Config
	clock vclock.Clock
	bus   gossip.Bus
	reg   *metrics.Registry
	load  Loader

	mu      sync.Mutex
	entries map[string]*entry
	deps    map[depKey]map[string]bool // backend row → cache keys
	slices  map[string][]string        // slice name → keys
	unsub   func()
}

type depKey struct{ table, key string }

// FlushTopic returns the bus topic carrying flush signals for a cache name.
func FlushTopic(name string) string { return "cache/flush/" + name }

// New creates a cache. bus may be nil for ModeTTL.
func New(cfg Config, clock vclock.Clock, bus gossip.Bus, reg *metrics.Registry, load Loader) *Cache {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Cache{
		cfg:     cfg,
		clock:   clock,
		bus:     bus,
		reg:     reg,
		load:    load,
		entries: make(map[string]*entry),
		deps:    make(map[depKey]map[string]bool),
		slices:  make(map[string][]string),
	}
	if cfg.Mode == ModeFlushOnUpdate && bus != nil {
		c.unsub = bus.Subscribe(FlushTopic(cfg.Name), func(m gossip.Message) {
			key := string(m.Payload)
			if key == "" {
				c.FlushAll()
			} else {
				c.Flush(key)
			}
		})
	}
	return c
}

// Close unsubscribes from the flush topic.
func (c *Cache) Close() {
	if c.unsub != nil {
		c.unsub()
	}
}

// Get returns the cached value for key, loading on miss or expiry.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok && c.fresh(e) {
		c.reg.Counter("cache.hits").Inc()
		v := append([]byte(nil), e.value...)
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()

	c.reg.Counter("cache.misses").Inc()
	value, version, found := c.load(key)
	if !found {
		return nil, false
	}
	c.mu.Lock()
	c.entries[key] = &entry{value: value, version: version, loadedAt: c.clock.Now()}
	c.mu.Unlock()
	return append([]byte(nil), value...), true
}

// fresh reports TTL validity (c.mu held).
func (c *Cache) fresh(e *entry) bool {
	return c.cfg.TTL <= 0 || c.clock.Since(e.loadedAt) <= c.cfg.TTL
}

// Peek returns the cached value without loading (even if stale by TTL it is
// not returned). Used to measure staleness windows in the benchmarks.
func (c *Cache) Peek(key string) ([]byte, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !c.fresh(e) {
		return nil, 0, false
	}
	return append([]byte(nil), e.value...), e.version, true
}

// Flush drops one entry.
func (c *Cache) Flush(key string) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
	c.reg.Counter("cache.flushes").Inc()
}

// FlushAll drops everything.
func (c *Cache) FlushAll() {
	c.mu.Lock()
	c.entries = make(map[string]*entry)
	c.mu.Unlock()
	c.reg.Counter("cache.flushes").Inc()
}

// BroadcastFlush signals every cache instance with this name, cluster-wide,
// to drop key ("" = all). Callers invoke it after their updating
// transaction commits — never inside it — or manually "in the event that
// the application observes a backdoor update" (§3.3).
func (c *Cache) BroadcastFlush(from, key string) {
	if c.bus == nil {
		c.Flush(key)
		return
	}
	c.bus.Publish(gossip.Message{Topic: FlushTopic(c.cfg.Name), From: from, Payload: []byte(key)})
}

// Len returns the number of resident entries (fresh or not).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ---------------------------------------------------------------------------
// Dependency tracking

// Depend records that cacheKey was computed from the backend row
// (table, rowKey). Finer-grained registration yields longer-lived caching;
// coarse registration (whole table) is cheaper to maintain (§3.3's
// granularity trade-off).
func (c *Cache) Depend(cacheKey, table, rowKey string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dk := depKey{table, rowKey}
	if c.deps[dk] == nil {
		c.deps[dk] = make(map[string]bool)
	}
	c.deps[dk][cacheKey] = true
}

// InvalidateBackend flushes every cache entry derived from the backend row.
// rowKey "" invalidates everything derived from the table.
func (c *Cache) InvalidateBackend(table, rowKey string) {
	c.mu.Lock()
	var victims []string
	collect := func(dk depKey) {
		for ck := range c.deps[dk] {
			victims = append(victims, ck)
		}
	}
	if rowKey == "" {
		for dk := range c.deps {
			if dk.table == table {
				collect(dk)
			}
		}
	} else {
		collect(depKey{table, rowKey})
		collect(depKey{table, ""}) // whole-table dependencies
	}
	for _, ck := range victims {
		delete(c.entries, ck)
	}
	c.mu.Unlock()
	if len(victims) > 0 {
		c.reg.Counter("cache.flushes").Add(int64(len(victims)))
	}
}

// ---------------------------------------------------------------------------
// Preloaded slices (query through the cache)

// DefineSlice registers a named slice of keys and preloads them.
func (c *Cache) DefineSlice(name string, keys []string) {
	c.mu.Lock()
	c.slices[name] = append([]string(nil), keys...)
	c.mu.Unlock()
	c.RefreshSlice(name)
}

// RefreshSlice re-loads every key of a slice from the backend ("refresh the
// slices as updates occur").
func (c *Cache) RefreshSlice(name string) {
	c.mu.Lock()
	keys := append([]string(nil), c.slices[name]...)
	c.mu.Unlock()
	now := c.clock.Now()
	for _, k := range keys {
		value, version, found := c.load(k)
		c.mu.Lock()
		if found {
			c.entries[k] = &entry{value: value, version: version, loadedAt: now}
		} else {
			delete(c.entries, k)
		}
		c.mu.Unlock()
	}
	c.reg.Counter("cache.slice_refreshes").Inc()
}

// QueryLocal scans the resident fresh entries — "querying through the
// cache in the manner of in-memory databases". It never touches the
// backend; with preloaded slices "the set of data in memory is known at
// all times".
func (c *Cache) QueryLocal(match func(key string, value []byte) bool) map[string][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]byte)
	for k, e := range c.entries {
		if c.fresh(e) && match(k, e.value) {
			out[k] = append([]byte(nil), e.value...)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Backdoor-update detection (§3.3)

// TriggerFlusher attaches a database trigger on the table that broadcasts a
// row-level flush whenever anyone — including backdoor applications —
// commits a change.
func TriggerFlusher(s *store.Store, table string, c *Cache, from string) {
	s.RegisterTrigger(table, func(ch store.Change) {
		c.InvalidateBackend(ch.Table, ch.Key)
		c.BroadcastFlush(from, ch.Key)
	})
}

// Sniffer polls a store's change log ("log-sniffing") and invalidates
// dependent cache entries. Unlike triggers it needs no hooks inside the
// database, at the cost of a polling delay.
type Sniffer struct {
	store    *store.Store
	cache    *Cache
	clock    vclock.Clock
	interval time.Duration
	from     string

	mu      sync.Mutex
	sinceLS uint64
	timer   vclock.Timer
	stopped bool
}

// NewSniffer creates a log sniffer starting from the store's current LSN.
func NewSniffer(s *store.Store, c *Cache, clock vclock.Clock, interval time.Duration, from string) *Sniffer {
	return &Sniffer{
		store:    s,
		cache:    c,
		clock:    clock,
		interval: interval,
		from:     from,
		sinceLS:  s.LastLSN(),
	}
}

// Start begins polling.
func (sn *Sniffer) Start() {
	sn.mu.Lock()
	sn.stopped = false
	sn.mu.Unlock()
	sn.schedule()
}

// Stop halts polling.
func (sn *Sniffer) Stop() {
	sn.mu.Lock()
	sn.stopped = true
	t := sn.timer
	sn.timer = nil
	sn.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}

func (sn *Sniffer) schedule() {
	sn.mu.Lock()
	if sn.stopped {
		sn.mu.Unlock()
		return
	}
	sn.timer = sn.clock.AfterFunc(sn.interval, func() {
		sn.SniffOnce()
		sn.schedule()
	})
	sn.mu.Unlock()
}

// SniffOnce processes any new change-log entries now. If the sniffer has
// fallen behind the store's bounded change log (ErrChangesTrimmed — e.g.
// after a store restart, or a long sniff pause), it cannot know which
// rows changed in the trimmed window, so it resynchronizes: flush the
// whole cache and restart from the store's current LSN.
func (sn *Sniffer) SniffOnce() {
	sn.mu.Lock()
	since := sn.sinceLS
	sn.mu.Unlock()
	changes, err := sn.store.Changes(since)
	if err != nil {
		sn.cache.FlushAll()
		sn.cache.reg.Counter("cache.sniffer_resyncs").Inc()
		sn.mu.Lock()
		sn.sinceLS = sn.store.LastLSN()
		sn.mu.Unlock()
		return
	}
	for _, ch := range changes {
		sn.cache.InvalidateBackend(ch.Table, ch.Key)
		sn.cache.BroadcastFlush(sn.from, ch.Key)
	}
	if len(changes) > 0 {
		sn.mu.Lock()
		sn.sinceLS = changes[len(changes)-1].LSN
		sn.mu.Unlock()
	}
}
