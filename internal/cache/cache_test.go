package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"wls/internal/gossip"
	"wls/internal/store"
	"wls/internal/vclock"
)

// backend wires a cache to a store table with a counting loader.
type backend struct {
	s     *store.Store
	loads int
	mu    sync.Mutex
}

func (b *backend) loader(table string) Loader {
	return func(key string) ([]byte, uint64, bool) {
		b.mu.Lock()
		b.loads++
		b.mu.Unlock()
		r, ok := b.s.Get(table, key)
		if !ok {
			return nil, 0, false
		}
		return []byte(r.Fields["v"]), r.Version, true
	}
}

func (b *backend) loadCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.loads
}

func fields(v string) map[string]string { return map[string]string{"v": v} }

func setup(clk vclock.Clock) (*backend, *gossip.InMemory) {
	b := &backend{s: store.New("db", clk)}
	b.s.Put("t", "k1", fields("one"))
	b.s.Put("t", "k2", fields("two"))
	return b, gossip.NewInMemory(clk, 1)
}

func TestGetLoadsOnceWithinTTL(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	c := New(Config{Name: "t", TTL: time.Second}, clk, nil, nil, b.loader("t"))
	for i := 0; i < 5; i++ {
		v, ok := c.Get("k1")
		if !ok || string(v) != "one" {
			t.Fatalf("get = %q ok=%v", v, ok)
		}
	}
	if b.loadCount() != 1 {
		t.Fatalf("loads = %d, want 1", b.loadCount())
	}
	if c.reg.Counter("cache.hits").Value() != 4 {
		t.Fatalf("hits = %d", c.reg.Counter("cache.hits").Value())
	}
}

func TestTTLExpiryReloads(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	c := New(Config{Name: "t", TTL: time.Second}, clk, nil, nil, b.loader("t"))
	c.Get("k1")
	b.s.Put("t", "k1", fields("ONE")) // backend changes
	// Within TTL: stale value served (the paper's staleness window).
	if v, _ := c.Get("k1"); string(v) != "one" {
		t.Fatalf("expected stale value within TTL, got %q", v)
	}
	clk.Advance(2 * time.Second)
	if v, _ := c.Get("k1"); string(v) != "ONE" {
		t.Fatalf("expected reload after TTL, got %q", v)
	}
}

func TestMissingKey(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	c := New(Config{Name: "t", TTL: time.Second}, clk, nil, nil, b.loader("t"))
	if _, ok := c.Get("nope"); ok {
		t.Fatal("missing key reported found")
	}
}

func TestFlushOnUpdateAcrossInstances(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, bus := setup(clk)
	// Two cache instances (two servers) on the same bus.
	c1 := New(Config{Name: "t", Mode: ModeFlushOnUpdate, TTL: time.Hour}, clk, bus, nil, b.loader("t"))
	defer c1.Close()
	c2 := New(Config{Name: "t", Mode: ModeFlushOnUpdate, TTL: time.Hour}, clk, bus, nil, b.loader("t"))
	defer c2.Close()

	c1.Get("k1")
	c2.Get("k1")

	// Server 1 updates and, after commit, broadcasts the flush.
	b.s.Put("t", "k1", fields("ONE"))
	c1.BroadcastFlush("server-1", "k1")

	if v, _ := c1.Get("k1"); string(v) != "ONE" {
		t.Fatalf("c1 = %q", v)
	}
	if v, _ := c2.Get("k1"); string(v) != "ONE" {
		t.Fatalf("c2 = %q (flush signal not received)", v)
	}
}

func TestBroadcastFlushAllEntries(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, bus := setup(clk)
	c := New(Config{Name: "t", Mode: ModeFlushOnUpdate, TTL: time.Hour}, clk, bus, nil, b.loader("t"))
	defer c.Close()
	c.Get("k1")
	c.Get("k2")
	c.BroadcastFlush("s", "")
	if c.Len() != 0 {
		t.Fatalf("len = %d after flush-all", c.Len())
	}
}

func TestCloseUnsubscribes(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, bus := setup(clk)
	c := New(Config{Name: "t", Mode: ModeFlushOnUpdate, TTL: time.Hour}, clk, bus, nil, b.loader("t"))
	c.Get("k1")
	c.Close()
	bus.Publish(gossip.Message{Topic: FlushTopic("t"), Payload: []byte("k1")})
	if c.Len() != 1 {
		t.Fatal("closed cache still processed flush")
	}
}

func TestPeekDoesNotLoad(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	c := New(Config{Name: "t", TTL: time.Second}, clk, nil, nil, b.loader("t"))
	if _, _, ok := c.Peek("k1"); ok {
		t.Fatal("peek of unloaded key reported found")
	}
	c.Get("k1")
	v, version, ok := c.Peek("k1")
	if !ok || string(v) != "one" || version != 1 {
		t.Fatalf("peek = %q v%d ok=%v", v, version, ok)
	}
	clk.Advance(2 * time.Second)
	if _, _, ok := c.Peek("k1"); ok {
		t.Fatal("peek returned expired entry")
	}
}

func TestDependencyInvalidation(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	// A derived page computed from two rows.
	pageLoader := func(key string) ([]byte, uint64, bool) {
		r1, _ := b.s.Get("t", "k1")
		r2, _ := b.s.Get("t", "k2")
		return []byte(r1.Fields["v"] + "+" + r2.Fields["v"]), 0, true
	}
	c := New(Config{Name: "pages", TTL: time.Hour}, clk, nil, nil, pageLoader)
	c.Get("page")
	c.Depend("page", "t", "k1")
	c.Depend("page", "t", "k2")

	b.s.Put("t", "k2", fields("TWO"))
	c.InvalidateBackend("t", "k2")
	if v, _ := c.Get("page"); string(v) != "one+TWO" {
		t.Fatalf("page = %q", v)
	}
}

func TestWholeTableDependency(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	c := New(Config{Name: "t", TTL: time.Hour}, clk, nil, nil, b.loader("t"))
	c.Get("k1")
	c.Depend("k1", "t", "") // coarse: any change to table t
	c.InvalidateBackend("t", "whatever-row")
	b.s.Put("t", "k1", fields("ONE"))
	if v, _ := c.Get("k1"); string(v) != "ONE" {
		t.Fatalf("coarse dependency did not invalidate: %q", v)
	}
}

func TestSlicePreloadAndQueryLocal(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	c := New(Config{Name: "t", TTL: time.Hour}, clk, nil, nil, b.loader("t"))
	c.DefineSlice("all", []string{"k1", "k2"})
	if b.loadCount() != 2 {
		t.Fatalf("preload loads = %d", b.loadCount())
	}
	// Query entirely in memory.
	got := c.QueryLocal(func(k string, v []byte) bool { return string(v) == "two" })
	if len(got) != 1 || string(got["k2"]) != "two" {
		t.Fatalf("query = %v", got)
	}
	if b.loadCount() != 2 {
		t.Fatal("QueryLocal touched the backend")
	}
}

func TestRefreshSliceAfterUpdate(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	c := New(Config{Name: "t", TTL: time.Hour}, clk, nil, nil, b.loader("t"))
	c.DefineSlice("all", []string{"k1", "k2"})
	b.s.Put("t", "k1", fields("ONE"))
	b.s.Delete("t", "k2")
	c.RefreshSlice("all")
	if v, _, ok := c.Peek("k1"); !ok || string(v) != "ONE" {
		t.Fatalf("k1 = %q ok=%v", v, ok)
	}
	if _, _, ok := c.Peek("k2"); ok {
		t.Fatal("deleted row still in slice")
	}
}

func TestTriggerFlusherCatchesBackdoor(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, bus := setup(clk)
	c := New(Config{Name: "t", Mode: ModeFlushOnUpdate, TTL: time.Hour}, clk, bus, nil, b.loader("t"))
	defer c.Close()
	c.Get("k1")
	c.Depend("k1", "t", "k1")
	TriggerFlusher(b.s, "t", c, "server-1")

	// Backdoor write (not through the app server) fires the trigger.
	b.s.Put("t", "k1", fields("BACKDOOR"))
	if v, _ := c.Get("k1"); string(v) != "BACKDOOR" {
		t.Fatalf("trigger missed backdoor update: %q", v)
	}
}

func TestSnifferCatchesBackdoorAfterPoll(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, bus := setup(clk)
	c := New(Config{Name: "t", Mode: ModeFlushOnUpdate, TTL: time.Hour}, clk, bus, nil, b.loader("t"))
	defer c.Close()
	c.Get("k1")
	c.Depend("k1", "t", "k1")
	sn := NewSniffer(b.s, c, clk, 100*time.Millisecond, "server-1")
	sn.Start()
	defer sn.Stop()

	b.s.Put("t", "k1", fields("BACKDOOR"))
	// Before the poll: stale (the sniffing delay).
	if v, _ := c.Get("k1"); string(v) != "one" {
		t.Fatalf("expected staleness before poll, got %q", v)
	}
	clk.Advance(150 * time.Millisecond)
	if v, _ := c.Get("k1"); string(v) != "BACKDOOR" {
		t.Fatalf("sniffer missed backdoor update: %q", v)
	}
}

func TestSnifferCheckpointAdvances(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	c := New(Config{Name: "t", TTL: time.Hour}, clk, nil, nil, b.loader("t"))
	sn := NewSniffer(b.s, c, clk, time.Second, "s")
	b.s.Put("t", "k1", fields("x"))
	sn.SniffOnce()
	flushesAfterFirst := c.reg.Counter("cache.flushes").Value()
	sn.SniffOnce() // no new changes: no more flushes
	if c.reg.Counter("cache.flushes").Value() != flushesAfterFirst {
		t.Fatal("sniffer reprocessed old changes")
	}
}

func TestConcurrentGets(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	for i := 0; i < 100; i++ {
		b.s.Put("t", fmt.Sprintf("key%d", i), fields(fmt.Sprint(i)))
	}
	c := New(Config{Name: "t", TTL: time.Hour}, clk, nil, nil, b.loader("t"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("key%d", i)
				v, ok := c.Get(k)
				if !ok || string(v) != fmt.Sprint(i) {
					t.Errorf("get %s = %q ok=%v", k, v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestStalenessWindowMeasurement(t *testing.T) {
	// E10/E11 shape check in miniature: TTL mode's staleness is bounded by
	// the TTL; flush-on-update mode's staleness is one bus hop (zero here).
	clk := vclock.NewVirtualAtZero()
	b, bus := setup(clk)

	ttlCache := New(Config{Name: "ttl", TTL: time.Second}, clk, nil, nil, b.loader("t"))
	fouCache := New(Config{Name: "t", Mode: ModeFlushOnUpdate, TTL: time.Hour}, clk, bus, nil, b.loader("t"))
	defer fouCache.Close()

	ttlCache.Get("k1")
	fouCache.Get("k1")
	b.s.Put("t", "k1", fields("NEW"))
	fouCache.BroadcastFlush("updater", "k1")

	// Flush-on-update sees the new value immediately.
	if v, _ := fouCache.Get("k1"); string(v) != "NEW" {
		t.Fatalf("fou = %q", v)
	}
	// TTL cache is stale until the TTL elapses.
	if v, _ := ttlCache.Get("k1"); string(v) != "one" {
		t.Fatalf("ttl should be stale, got %q", v)
	}
	clk.Advance(time.Second + time.Millisecond)
	if v, _ := ttlCache.Get("k1"); string(v) != "NEW" {
		t.Fatalf("ttl after expiry = %q", v)
	}
}

func TestSnifferResyncsAfterChangeLogTrim(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	b, _ := setup(clk)
	b.s.SetChangeCap(4)
	c := New(Config{Name: "t", TTL: time.Hour}, clk, nil, nil, b.loader("t"))
	c.Get("k1")
	c.Get("k2")
	sn := NewSniffer(b.s, c, clk, time.Second, "s1")

	// A backdoor burst larger than the bounded change log: the sniffer's
	// cursor falls out of the window, so it cannot know which rows changed.
	for i := 0; i < 10; i++ {
		b.s.Put("t", fmt.Sprintf("burst%d", i), fields("x"))
	}
	sn.SniffOnce()
	if c.Len() != 0 {
		t.Fatalf("resync must flush the whole cache; %d entries remain", c.Len())
	}
	if n := c.reg.Counter("cache.sniffer_resyncs").Value(); n != 1 {
		t.Fatalf("sniffer_resyncs = %d, want 1", n)
	}

	// The cursor restarted at the store's LSN: the next change is caught
	// incrementally, without another full flush.
	c.Get("k1")
	c.Depend("k1", "t", "k1")
	b.s.Put("t", "k1", fields("BACKDOOR"))
	sn.SniffOnce()
	if v, _ := c.Get("k1"); string(v) != "BACKDOOR" {
		t.Fatalf("post-resync incremental sniff missed the update: %q", v)
	}
	if n := c.reg.Counter("cache.sniffer_resyncs").Value(); n != 1 {
		t.Fatalf("incremental sniff resynced again: %d", n)
	}
}
