package rmi

import (
	"context"
	"sync"
	"time"

	"wls/internal/cluster"
	"wls/internal/metrics"
	"wls/internal/vclock"
)

// This file is the client half of the overload-protection story: a shared
// retry budget (token bucket) so a struggling cluster is not drowned in
// retries, capped exponential backoff with deterministic jitter, and a
// per-server circuit breaker. One Resilience instance is shared by every
// stub a server (or router) creates, so the budget and breakers see the
// caller's aggregate behaviour — a per-stub bucket would just shift the
// retry storm one layer down.

// ResilienceConfig tunes a Resilience. The zero value selects defaults.
type ResilienceConfig struct {
	// RetryBudget is the token-bucket capacity: the number of retries the
	// caller may have "banked" at once (default 10). Every retry spends a
	// token; only successes earn them back.
	RetryBudget int
	// RetryRatio is the fraction of a token earned per successful call
	// (default 0.1: one banked retry per ten successes).
	RetryRatio float64
	// BackoffBase is the delay before the first retry (default 5ms); each
	// further retry doubles it up to BackoffMax (default 250ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// server's breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting a
	// half-open probe (default 500ms).
	BreakerCooldown time.Duration
	// Seed drives the backoff jitter. The jitter sequence is a pure
	// function of (Seed, spend counter) on the virtual clock, which keeps
	// chaos timelines byte-identical per (seed, config).
	Seed int64
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.RetryBudget <= 0 {
		c.RetryBudget = 10
	}
	if c.RetryRatio <= 0 {
		c.RetryRatio = 0.1
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	return c
}

// BreakerState is one server's circuit-breaker state.
type BreakerState int

// Breaker states: Closed admits traffic, Open refuses it until the
// cooldown elapses, HalfOpen admits a single probe whose outcome decides
// between re-closing and re-opening.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is one server's circuit state. All fields are guarded by
// Resilience.mu.
type breaker struct {
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	stateG   *metrics.Gauge
}

// Resilience is the shared client-side overload protection consulted by
// every stub built with WithResilience.
type Resilience struct {
	cfg   ResilienceConfig
	clock vclock.Clock
	reg   *metrics.Registry

	retries       *metrics.Counter // retry tokens spent
	retryDenied   *metrics.Counter // retries refused: bucket empty
	breakerOpened *metrics.Counter
	breakerClosed *metrics.Counter
	tokensG       *metrics.Gauge // banked tokens, floored

	// mu guards the token bucket, the jitter counter and the breaker map.
	// Per-server breaker gauges are resolved from the metrics registry
	// while mu is held (first sighting of a server), so mu strictly
	// precedes the registry's lock.
	//
	//wls:lockorder rmi.Resilience.mu<metrics.Registry.mu
	mu        sync.Mutex
	tokens    float64
	jitterCtr uint64
	breakers  map[string]*breaker
}

// NewResilience builds a Resilience on the given clock, exporting its state
// into reg (a private registry when nil).
func NewResilience(cfg ResilienceConfig, clock vclock.Clock, reg *metrics.Registry) *Resilience {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r := &Resilience{
		cfg:           cfg,
		clock:         clock,
		reg:           reg,
		retries:       reg.Counter("rmi.retries"),
		retryDenied:   reg.Counter("rmi.retry.denied"),
		breakerOpened: reg.Counter("rmi.breaker.opened"),
		breakerClosed: reg.Counter("rmi.breaker.closed"),
		tokensG:       reg.Gauge("rmi.retry.tokens"),
		tokens:        float64(cfg.RetryBudget),
		breakers:      make(map[string]*breaker),
	}
	r.tokensG.Set(int64(r.tokens))
	return r
}

// forServer returns (creating on first sight) the server's breaker.
// Callers hold r.mu.
func (r *Resilience) forServer(name string) *breaker {
	b := r.breakers[name]
	if b == nil {
		b = &breaker{stateG: r.reg.Gauge("rmi.breaker.state." + name)}
		r.breakers[name] = b
	}
	return b
}

func (r *Resilience) setState(b *breaker, s BreakerState) {
	b.state = s
	b.stateG.Set(int64(s))
}

// Allow reports whether an attempt against the named server should be
// issued: always while its breaker is closed, never while open (until the
// cooldown promotes it to half-open), and for at most one in-flight probe
// while half-open.
//
//wls:hotpath
func (r *Resilience) Allow(server string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.forServer(server)
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if r.clock.Since(b.openedAt) < r.cfg.BreakerCooldown {
			return false
		}
		r.setState(b, BreakerHalfOpen)
		return true
	default: // half-open
		return !b.probing
	}
}

// markAttempt records that an attempt is actually being issued against the
// server; a half-open breaker claims it as its probe.
func (r *Resilience) markAttempt(server string) {
	r.mu.Lock()
	if b := r.breakers[server]; b != nil && b.state == BreakerHalfOpen {
		b.probing = true
	}
	r.mu.Unlock()
}

// recordSuccess notes a completed call (including application errors: the
// server executed the request, so it is healthy) and earns retry credit.
func (r *Resilience) recordSuccess(server string) {
	r.mu.Lock()
	r.tokens += r.cfg.RetryRatio
	if max := float64(r.cfg.RetryBudget); r.tokens > max {
		r.tokens = max
	}
	r.tokensG.Set(int64(r.tokens))
	b := r.forServer(server)
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		r.setState(b, BreakerClosed)
		r.breakerClosed.Inc()
	}
	r.mu.Unlock()
}

// recordFailure notes a transport/system-level failure against the server.
func (r *Resilience) recordFailure(server string) {
	r.mu.Lock()
	b := r.forServer(server)
	b.probing = false
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= r.cfg.BreakerThreshold {
			r.setState(b, BreakerOpen)
			b.openedAt = r.clock.Now()
			r.breakerOpened.Inc()
		}
	case BreakerHalfOpen:
		// The probe failed: back to open, cooldown restarts.
		r.setState(b, BreakerOpen)
		b.openedAt = r.clock.Now()
		r.breakerOpened.Inc()
		// An already-open breaker stays open without refreshing openedAt, so
		// forced probes under total outage cannot postpone half-open forever.
	}
	r.mu.Unlock()
}

// State returns the server's current breaker state (closed if never seen).
func (r *Resilience) State(server string) BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b := r.breakers[server]; b != nil {
		return b.state
	}
	return BreakerClosed
}

// SpendRetry takes one token from the retry budget, reporting false (and
// counting the denial) when the bucket is empty.
func (r *Resilience) SpendRetry() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tokens < 1 {
		r.retryDenied.Inc()
		return false
	}
	r.tokens--
	r.tokensG.Set(int64(r.tokens))
	r.retries.Inc()
	return true
}

// splitmix64 is the jitter hash: a tiny, well-mixed PRF so the jitter for
// spend n is a pure function of (seed, n) with no shared rand.Rand state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoff returns the pre-retry delay for retry number n (n=1 is the first
// retry): capped exponential growth scaled by a deterministic jitter factor
// in [0.5, 1.0). Jitter de-synchronizes retry waves from concurrent
// callers; deriving it from a counter instead of wall time keeps virtual-
// clock chaos timelines byte-identical.
func (r *Resilience) backoff(n int) time.Duration {
	d := r.cfg.BackoffBase
	for i := 1; i < n && d < r.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > r.cfg.BackoffMax {
		d = r.cfg.BackoffMax
	}
	r.mu.Lock()
	r.jitterCtr++
	c := r.jitterCtr
	r.mu.Unlock()
	h := splitmix64(uint64(r.cfg.Seed) ^ c)
	frac := 0.5 + 0.5*float64(h>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}

// ---------------------------------------------------------------------------
// Breaker-aware candidate ordering

// BreakerPolicy wraps another load-balancing policy and demotes servers
// whose breaker is open to the back of the candidate order: healthy
// servers absorb the traffic, and an open server is only reached when
// everything healthier has already failed. It never removes candidates —
// the per-attempt Allow gate decides whether an attempt is actually
// issued, and a last-resort probe is always permitted when every breaker
// is open.
type BreakerPolicy struct {
	Next Policy
	R    *Resilience
}

// Order implements Policy.
func (p BreakerPolicy) Order(ctx context.Context, localName string, cands []cluster.MemberInfo) []cluster.MemberInfo {
	ordered := p.Next.Order(ctx, localName, cands)
	if p.R == nil {
		return ordered
	}
	healthy := make([]cluster.MemberInfo, 0, len(ordered))
	var broken []cluster.MemberInfo
	for _, c := range ordered {
		if p.R.State(c.Name) == BreakerOpen {
			broken = append(broken, c)
		} else {
			healthy = append(healthy, c)
		}
	}
	return append(healthy, broken...)
}
