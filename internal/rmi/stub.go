package rmi

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"wls/internal/cluster"
	"wls/internal/netsim"
	"wls/internal/trace"
	"wls/internal/transport"
	"wls/internal/vclock"
	"wls/internal/wire"
)

// ---------------------------------------------------------------------------
// Load-balancing policies

// Policy orders the candidate servers for one invocation. The stub tries
// candidates in the returned order when failing over. Policies must be safe
// for concurrent use.
type Policy interface {
	Order(ctx context.Context, localName string, cands []cluster.MemberInfo) []cluster.MemberInfo
}

// RoundRobin rotates through candidates; the paper notes this simple scheme
// is "particularly effective" for short-running transactional requests
// (§2.1).
type RoundRobin struct{ n atomic.Uint64 }

// NewRoundRobin returns a fresh round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Order implements Policy.
func (p *RoundRobin) Order(_ context.Context, _ string, cands []cluster.MemberInfo) []cluster.MemberInfo {
	if len(cands) == 0 {
		return nil
	}
	start := int(p.n.Add(1)-1) % len(cands)
	out := make([]cluster.MemberInfo, 0, len(cands))
	for i := 0; i < len(cands); i++ {
		out = append(out, cands[(start+i)%len(cands)])
	}
	return out
}

// Random picks a uniformly random starting candidate.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a Random policy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Order implements Policy.
func (p *Random) Order(_ context.Context, _ string, cands []cluster.MemberInfo) []cluster.MemberInfo {
	if len(cands) == 0 {
		return nil
	}
	p.mu.Lock()
	start := p.rng.Intn(len(cands))
	p.mu.Unlock()
	out := make([]cluster.MemberInfo, 0, len(cands))
	for i := 0; i < len(cands); i++ {
		out = append(out, cands[(start+i)%len(cands)])
	}
	return out
}

// WeightBased orders candidates by configured weight with weighted random
// selection of the first target.
type WeightBased struct {
	mu      sync.Mutex
	rng     *rand.Rand
	weights map[string]int // by server name; default weight 1
}

// NewWeightBased returns a weight-based policy.
func NewWeightBased(seed int64, weights map[string]int) *WeightBased {
	w := make(map[string]int, len(weights))
	for k, v := range weights {
		w[k] = v
	}
	return &WeightBased{rng: rand.New(rand.NewSource(seed)), weights: w}
}

func (p *WeightBased) weight(name string) int {
	if w, ok := p.weights[name]; ok && w > 0 {
		return w
	}
	return 1
}

// Order implements Policy.
func (p *WeightBased) Order(_ context.Context, _ string, cands []cluster.MemberInfo) []cluster.MemberInfo {
	if len(cands) == 0 {
		return nil
	}
	total := 0
	for _, c := range cands {
		total += p.weight(c.Name)
	}
	p.mu.Lock()
	pick := p.rng.Intn(total)
	p.mu.Unlock()
	start := 0
	for i, c := range cands {
		pick -= p.weight(c.Name)
		if pick < 0 {
			start = i
			break
		}
	}
	out := make([]cluster.MemberInfo, 0, len(cands))
	for i := 0; i < len(cands); i++ {
		out = append(out, cands[(start+i)%len(cands)])
	}
	return out
}

// LocalPreference wraps another policy and, for internal clients, always
// prefers an instance on the local server "in order to minimize the number
// of servers involved in processing a request" (§3.1).
type LocalPreference struct{ Next Policy }

// Order implements Policy.
func (p LocalPreference) Order(ctx context.Context, localName string, cands []cluster.MemberInfo) []cluster.MemberInfo {
	ordered := p.Next.Order(ctx, localName, cands)
	if localName == "" {
		return ordered
	}
	for i, c := range ordered {
		if c.Name == localName {
			if i != 0 {
				reordered := make([]cluster.MemberInfo, 0, len(ordered))
				reordered = append(reordered, c)
				reordered = append(reordered, ordered[:i]...)
				reordered = append(reordered, ordered[i+1:]...)
				return reordered
			}
			return ordered
		}
	}
	return ordered
}

// affinityKey carries the set of servers already participating in the
// caller's transaction.
type affinityKey struct{}

// WithAffinity returns a context that prefers the given servers, used to
// "limit the spread of the transaction" (§3.1): the transaction layer adds
// every server it has enlisted.
func WithAffinity(ctx context.Context, servers ...string) context.Context {
	return context.WithValue(ctx, affinityKey{}, servers)
}

// AffinityFrom extracts the preferred-server list from ctx.
func AffinityFrom(ctx context.Context) []string {
	if v, ok := ctx.Value(affinityKey{}).([]string); ok {
		return v
	}
	return nil
}

// TxAffinity wraps another policy and prefers servers already involved in
// the in-progress transaction (from the context), after any local
// preference the wrapped policy applies.
type TxAffinity struct{ Next Policy }

// Order implements Policy.
func (p TxAffinity) Order(ctx context.Context, localName string, cands []cluster.MemberInfo) []cluster.MemberInfo {
	ordered := p.Next.Order(ctx, localName, cands)
	aff := AffinityFrom(ctx)
	if len(aff) == 0 {
		return ordered
	}
	inTx := make(map[string]bool, len(aff))
	for _, s := range aff {
		inTx[s] = true
	}
	preferred := make([]cluster.MemberInfo, 0, len(ordered))
	rest := make([]cluster.MemberInfo, 0, len(ordered))
	for _, c := range ordered {
		// Local server stays first even when not in the transaction yet;
		// invoking locally never spreads the transaction further.
		if c.Name == localName || inTx[c.Name] {
			preferred = append(preferred, c)
		} else {
			rest = append(rest, c)
		}
	}
	return append(preferred, rest...)
}

// DefaultPolicy is what WebLogic ships: round robin with local preference
// and transaction affinity (§3.1).
func DefaultPolicy() Policy {
	return TxAffinity{Next: LocalPreference{Next: NewRoundRobin()}}
}

// ---------------------------------------------------------------------------
// Stub

// Stub is the client-side proxy for a clustered service.
type Stub struct {
	service string
	node    Node
	view    View
	policy  Policy
	// res is the shared overload protection (nil: retry instantly and
	// endlessly within the candidate list, the pre-resilience behaviour).
	res *Resilience
	// idempotent lists methods declared idempotent in the deployment
	// descriptor mirrored into the stub.
	idempotent map[string]bool
}

// StubOption configures a Stub.
type StubOption func(*Stub)

// WithPolicy overrides the load-balancing policy (default DefaultPolicy).
func WithPolicy(p Policy) StubOption { return func(s *Stub) { s.policy = p } }

// WithResilience attaches shared client-side overload protection: failover
// retries draw from r's token bucket, wait out its jittered backoff, and
// skip servers whose circuit breaker is open. NewStub additionally wraps
// whatever policy is configured in a BreakerPolicy so open servers sort
// last (regardless of option order).
func WithResilience(r *Resilience) StubOption {
	return func(s *Stub) { s.res = r }
}

// WithIdempotent declares methods that may be retried after possible side
// effects.
func WithIdempotent(methods ...string) StubOption {
	return func(s *Stub) {
		for _, m := range methods {
			s.idempotent[m] = true
		}
	}
}

// NewStub creates a stub for service using the given node and view.
func NewStub(service string, node Node, view View, opts ...StubOption) *Stub {
	s := &Stub{
		service:    service,
		node:       node,
		view:       view,
		policy:     DefaultPolicy(),
		idempotent: make(map[string]bool),
	}
	for _, o := range opts {
		o(s)
	}
	if s.res != nil {
		s.policy = BreakerPolicy{Next: s.policy, R: s.res}
	}
	return s
}

// Result is a successful invocation outcome.
type Result struct {
	// Body is the method's encoded return payload.
	Body []byte
	// ServedBy is the name of the server that executed the request; the
	// transaction layer records it to build affinity.
	ServedBy string
}

// Invoke calls service.method with load balancing and failover.
//
//wls:hotpath
func (s *Stub) Invoke(ctx context.Context, method string, args []byte) (*Result, error) {
	return s.invoke(ctx, method, args, "", "")
}

// InvokeTx calls service.method propagating a transaction identifier.
func (s *Stub) InvokeTx(ctx context.Context, txID, method string, args []byte) (*Result, error) {
	return s.invoke(ctx, method, args, txID, "")
}

// InvokeConv calls service.method propagating a conversation identifier.
func (s *Stub) InvokeConv(ctx context.Context, convID, method string, args []byte) (*Result, error) {
	return s.invoke(ctx, method, args, "", convID)
}

func (s *Stub) invoke(ctx context.Context, method string, args []byte, txID, convID string) (*Result, error) {
	cands := s.view.Candidates(s.service)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoServers, s.service)
	}
	budget, hasBudget := BudgetFrom(ctx)
	if hasBudget && budget.Expired() {
		return nil, fmt.Errorf("%w: before %s.%s", ErrBudgetExceeded, s.service, method)
	}
	// With a single candidate there is nothing to order: every policy is a
	// permutation, so skip the policy chain (and its slice allocations)
	// entirely. The breaker gate below still applies per attempt. The
	// candidate slice may be shared with the view's cache either way — it
	// is only iterated here, never mutated.
	ordered := cands
	if len(cands) > 1 {
		ordered = s.policy.Order(ctx, s.view.LocalName(), cands)
	}
	// One client span for the logical invocation, one child per attempt:
	// failover retries become distinct, inspectable children. The span name
	// is concatenated only inside the traced branch so untraced calls stay
	// allocation-free.
	var span *trace.Span
	if parent := trace.FromContext(ctx); parent != nil {
		ctx, span = parent.NewChild(ctx, "rmi.call "+s.service+"."+method, trace.KindClient)
		defer span.Finish()
	}
	var lastErr error
	attempts := 0
	for i, cand := range ordered {
		// A cancelled caller must not keep dialing the remaining
		// candidates: the work it wanted is moot.
		if err := ctx.Err(); err != nil {
			err = fmt.Errorf("rmi: %s.%s abandoned before attempt %d: %w", s.service, method, i+1, err)
			span.SetError(err)
			return nil, errJoin(err, lastErr)
		}
		if hasBudget && budget.Expired() {
			err := fmt.Errorf("%w: at %s.%s attempt %d", ErrBudgetExceeded, s.service, method, i+1)
			span.SetError(err)
			return nil, errJoin(err, lastErr)
		}
		if s.res != nil {
			// Breaker gate. If every candidate is refused (all breakers
			// open, none cooled down), the last candidate is attempted
			// anyway: total lockout would otherwise be unrecoverable for
			// callers that arrive between cooldowns.
			if !s.res.Allow(cand.Name) && !(attempts == 0 && i == len(ordered)-1) {
				continue
			}
			if attempts > 0 {
				// Failover retry: pay a token and back off before re-dialing.
				if !s.res.SpendRetry() {
					err := fmt.Errorf("rmi: retry budget exhausted for %s.%s: %w", s.service, method, lastErr)
					span.SetError(err)
					return nil, err
				}
				d := s.res.backoff(attempts)
				if hasBudget {
					if rem := budget.Remaining(); d > rem {
						d = rem
					}
				}
				if err := sleepCtx(ctx, s.res.clock, d); err != nil {
					span.SetError(err)
					return nil, errJoin(err, lastErr)
				}
				if hasBudget && budget.Expired() {
					err := fmt.Errorf("%w: during backoff before %s.%s attempt %d", ErrBudgetExceeded, s.service, method, i+1)
					span.SetError(err)
					return nil, errJoin(err, lastErr)
				}
			}
			s.res.markAttempt(cand.Name)
		}
		attempts++
		attemptCtx := ctx
		var att *trace.Span
		if span != nil {
			attemptCtx, att = span.NewChild(ctx, "rmi.attempt", trace.KindClient)
			att.Annotate("target", cand.Name)
			att.AnnotateInt("attempt", attempts)
			if s.res != nil {
				att.Annotate("breaker", s.res.State(cand.Name).String())
			}
		}
		res, err := s.callOne(attemptCtx, cand.Addr, method, args, txID, convID)
		if err == nil {
			if s.res != nil {
				s.res.recordSuccess(cand.Name)
			}
			if att != nil {
				att.Annotate("final", "true")
				att.Finish()
				if attempts > 1 {
					span.AnnotateInt("failovers", attempts-1)
				}
			}
			return res, nil
		}
		if s.res != nil {
			// Application errors mean the server executed the request: it
			// is healthy, just unhappy. Everything else trips the breaker.
			if IsAppError(err) {
				s.res.recordSuccess(cand.Name)
			} else {
				s.res.recordFailure(cand.Name)
			}
		}
		lastErr = err
		failover := s.mayFailOver(method, err) && !errors.Is(err, ErrBudgetExceeded)
		if att != nil {
			att.SetError(err)
			if !failover || i == len(ordered)-1 {
				att.Annotate("final", "true")
			}
			att.Finish()
		}
		if !failover {
			span.SetError(err)
			return nil, err
		}
	}
	err := fmt.Errorf("rmi: all %d candidates failed for %s.%s: %w",
		len(ordered), s.service, method, lastErr)
	span.SetError(err)
	return nil, err
}

// errJoin wraps a terminal condition (cancellation, budget expiry) with the
// last attempt error when there is one, so callers see both why the stub
// stopped and what the cluster last said.
func errJoin(terminal, last error) error {
	if last == nil {
		return terminal
	}
	return fmt.Errorf("%w (last attempt: %v)", terminal, last)
}

// sleepCtx waits d on the given clock unless ctx is cancelled first.
func sleepCtx(ctx context.Context, clock vclock.Clock, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	select {
	case <-clock.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// InvokeOn calls the method on a specific server, bypassing load balancing.
// Conversational stubs are "hardwired to the chosen server so requests are
// naturally routed to the right place" (§3.2).
func (s *Stub) InvokeOn(ctx context.Context, serverAddr, method string, args []byte) (*Result, error) {
	return s.callOne(ctx, serverAddr, method, args, "", "")
}

// retryableErr marks failures that are guaranteed to have produced no side
// effects on the target.
type retryableErr struct{ err error }

func (e *retryableErr) Error() string { return e.err.Error() }
func (e *retryableErr) Unwrap() error { return e.err }

// BusyError is a wire-level BUSY response: the server refused the request
// at admission (execute queue full, or the budget had already expired), so
// no application code ran and failing over is always safe.
type BusyError struct {
	// Server is the refusing server's name.
	Server string
	// Msg says why (queue full vs expired).
	Msg string
}

func (e *BusyError) Error() string { return "rmi: " + e.Server + " busy: " + e.Msg }

// IsBusy reports whether err is a server's admission refusal.
func IsBusy(err error) bool {
	var be *BusyError
	return errors.As(err, &be)
}

func (s *Stub) mayFailOver(method string, err error) bool {
	if IsAppError(err) {
		return false // the request executed; the application said no
	}
	if IsBusy(err) {
		return true // refused at admission: guaranteed no side effects
	}
	if s.idempotent[method] {
		return true
	}
	var re *retryableErr
	return errors.As(err, &re)
}

// requestNeverSent classifies transport errors that occur before a request
// could have reached the target's application code.
func requestNeverSent(err error) bool {
	return errors.Is(err, netsim.ErrUnreachable) ||
		errors.Is(err, netsim.ErrFenced) ||
		errors.Is(err, transport.ErrDial)
}

func (s *Stub) callOne(ctx context.Context, addr, method string, args []byte, txID, convID string) (*Result, error) {
	// Both Node implementations copy the frame body before Call returns
	// (the transport into its batched send queue, netsim on entry), so the
	// pooled encoder can be released as soon as the exchange completes.
	// The request fields are encoded directly — no intermediate Call.
	enc := wire.AcquireEncoder()
	defer enc.Release()
	enc.String(s.service)
	enc.String(method)
	enc.String(txID)
	enc.String(convID)
	enc.Bytes2(args)
	budget, hasBudget := BudgetFrom(ctx)
	if hasBudget {
		remaining := budget.Remaining()
		if remaining <= 0 {
			return nil, fmt.Errorf("%w: before dialing %s", ErrBudgetExceeded, addr)
		}
		appendDeadline(enc, remaining)
		// Stop waiting at the deadline even if the server (frozen, slow,
		// partitioned-away) never answers: cancel the transport call when
		// the budget runs out.
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		t := budget.clock.AfterFunc(remaining, cancel)
		defer t.Stop()
		defer cancel()
	}
	if sp := trace.FromContext(ctx); sp != nil {
		trace.AppendEnvelope(enc, sp.Context())
	}
	frame := wire.Frame{Kind: wire.KindRequest, Body: enc.Bytes()}
	respFrame, err := s.node.Call(ctx, addr, frame)
	if hasBudget && budget.Expired() {
		// Whatever came back (or didn't) arrived after the caller's
		// deadline: never deliver a late response.
		return nil, fmt.Errorf("%w: no response from %s within budget", ErrBudgetExceeded, addr)
	}
	if err != nil {
		if requestNeverSent(err) {
			return nil, &retryableErr{err}
		}
		return nil, fmt.Errorf("%w: %v", ErrNotRetryable, err)
	}
	resp, err := decodeResponse(respFrame.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: malformed response: %v", ErrNotRetryable, err)
	}
	switch resp.status {
	case respOK:
		return &Result{Body: resp.body, ServedBy: resp.servedBy}, nil
	case respAppError:
		return nil, &AppError{Msg: resp.errMsg}
	case respNoSuchService:
		// The service is not deployed there (stale view); certainly no side
		// effects, so failover is always safe. The typed error also lets
		// callers detect "peer doesn't speak this method" for protocol
		// fallback (see IsNotDeployed).
		return nil, &retryableErr{&NotDeployedError{Msg: resp.errMsg}}
	case respBusy:
		return nil, &BusyError{Server: resp.servedBy, Msg: resp.errMsg}
	default:
		return nil, fmt.Errorf("%w: %s", ErrNotRetryable, resp.errMsg)
	}
}
