// Package rmi implements the cluster-aware remote method invocation layer
// of §2.2/§3.1: "The WebLogic RMI stub for a service obtains information
// about which members of the cluster are actively offering the service and
// uses it to make load balancing and failover decisions. The algorithm for
// obtaining this information and making these decisions is pluggable."
//
// A Registry runs on every server: it holds the local service
// implementations, dispatches inbound request frames to them, and
// advertises deployed services through cluster membership heartbeats. A
// Stub is the client side: it consults a View (live membership for internal
// clients, a periodically refreshed cached copy for external clients),
// picks a target with a pluggable Policy, and fails over according to the
// paper's rule — an operation is retried only when it is guaranteed to have
// had no side effects (the request never reached a server, the service was
// not deployed there) or when the method is declared idempotent.
package rmi

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"wls/internal/cluster"
	"wls/internal/metrics"
	"wls/internal/trace"
	"wls/internal/vclock"
	"wls/internal/wire"
)

// Node is the transport endpoint the registry and stubs ride on. Both
// netsim.Endpoint and transport.Transport satisfy it.
//
// Contract: Send and Call must not retain f.Body after returning (both
// implementations copy it into their delivery path), which lets stubs
// encode requests into pooled buffers. Symmetrically, the Body of the
// frame Call returns is owned by the caller: the transport clones
// response bodies out of its read buffer before delivery, and netsim
// hands over the handler's freshly encoded response buffer. Stubs rely
// on this to decode responses without copying.
type Node interface {
	Addr() string
	Send(ctx context.Context, to string, f wire.Frame) error
	Call(ctx context.Context, to string, f wire.Frame) (wire.Frame, error)
	SetHandler(h wire.Handler)
}

// Errors surfaced by stubs.
var (
	// ErrNoServers means no live cluster member offers the service.
	ErrNoServers = errors.New("rmi: no servers offer the service")
	// ErrNotRetryable wraps a failure that occurred after the request may
	// have had side effects on a non-idempotent method.
	ErrNotRetryable = errors.New("rmi: failed after possible side effects")
)

// AppError is an error returned by the service implementation itself (as
// opposed to a system/transport failure). Application errors never trigger
// failover — the request executed.
type AppError struct{ Msg string }

func (e *AppError) Error() string { return e.Msg }

// IsAppError reports whether err is an application-level error.
func IsAppError(err error) bool {
	var ae *AppError
	return errors.As(err, &ae)
}

// NotDeployedError reports that the target server answered but does not
// deploy the requested service or method. The request definitely had no
// side effects, so stubs fail over freely; callers that speak optional
// methods (e.g. batched SAF delivery to a mixed-version peer) use
// IsNotDeployed to fall back to the older protocol instead of retrying.
type NotDeployedError struct{ Msg string }

func (e *NotDeployedError) Error() string { return e.Msg }

// IsNotDeployed reports whether err means the remote answered
// "no such service/method".
func IsNotDeployed(err error) bool {
	var nd *NotDeployedError
	return errors.As(err, &nd)
}

// Call carries one inbound invocation to a service method.
//
// The registry recycles Call objects through a pool: a handler must not
// retain the *Call, its Args, or any sub-slice of Args after it returns
// (copy what must outlive the call). Args aliases the inbound frame body.
//
//wls:pooled
type Call struct {
	// From is the advertised address of the calling server (or client).
	From string
	// Service and Method name what is being invoked.
	Service, Method string
	// Args is the wire-encoded argument payload.
	Args []byte
	// TxID is the propagated transaction identifier, empty outside any
	// transaction.
	TxID string
	// ConvID is the propagated conversation/session identifier, empty for
	// stateless calls.
	ConvID string
}

// Handler implements one service method. Returning an error of type
// *AppError reports an application failure to the caller; any other error
// is reported as a system failure.
type Handler func(ctx context.Context, call *Call) ([]byte, error)

// MethodSpec describes one method of a service.
type MethodSpec struct {
	Handler Handler
	// Idempotent declares that the method may be safely retried on another
	// server even after it may have executed (§3.1).
	Idempotent bool
	// System exempts the method from execute-queue admission: cluster
	// infrastructure (session replication, lease renewal, transaction
	// coordination, health probes) is small, bounded work whose denial
	// under load would destabilize the cluster rather than protect it —
	// the equivalent of WebLogic's dedicated system execute queues.
	System bool

	// name is the canonical method name, resolved at Register time so the
	// dispatch path can populate Call.Method without converting the wire
	// bytes to a fresh string.
	name string
}

// Service is a named set of methods.
type Service struct {
	Name    string
	Methods map[string]MethodSpec
	// System marks every method of the service as cluster infrastructure,
	// exempt from execute-queue admission (see MethodSpec.System).
	System bool

	// requests counts inbound calls for this service. Register resolves
	// it once so the per-request path never rebuilds the metric name
	// ("rmi.requests."+Name allocates on every call otherwise).
	requests *metrics.Counter
}

// ---------------------------------------------------------------------------
// Wire encoding of requests and responses.

const (
	respOK byte = iota
	respAppError
	respSystemError
	respNoSuchService // definitely no side effects: safe to fail over
	respBusy          // admission refused (queue full / budget expired): no side effects
)

// The request wire format is: service, method, txID, convID as
// length-prefixed strings, then the args payload, then the optional
// deadline block and trace envelope. Stub.callOne encodes it field by
// field into a pooled encoder; handle decodes it in place below.

// callPool recycles server-side Call objects. handle acquires one per
// request and releases it after the handler's response frame is built
// (handlers must not retain the Call — see the Call doc comment).
var callPool = sync.Pool{New: func() any { return new(Call) }}

func releaseCall(c *Call) {
	*c = Call{}
	callPool.Put(c)
}

func encodeResponse(status byte, servedBy, errMsg string, body []byte) []byte {
	// A fresh (non-pooled) buffer on purpose: the response body is handed
	// to the node, and Node.Call's ownership contract promises the caller
	// an owned body. A value encoder makes that one allocation, not two.
	e := wire.MakeEncoder(32 + len(body))
	e.Byte(status)
	e.String(servedBy)
	e.String(errMsg)
	e.Bytes2(body)
	return e.Bytes()
}

type response struct {
	status   byte
	servedBy string
	errMsg   string
	body     []byte
}

// serverNames interns the servedBy field of responses: a client talks to a
// bounded set of servers, so after warmup every response resolves its
// server name without allocating.
var serverNames = wire.NewInterner(512)

// decodeResponse decodes without copying: body aliases b, which is safe
// because Node.Call hands the caller an owned response body (see the Node
// contract). errMsg is empty on the happy path, where converting the empty
// slice does not allocate.
func decodeResponse(b []byte) (response, error) {
	d := wire.NewDecoder(b)
	r := response{status: d.Byte()}
	r.servedBy = serverNames.Intern(d.BytesNoCopy())
	r.errMsg = d.String()
	r.body = d.BytesNoCopy()
	return r, d.Err()
}

// ---------------------------------------------------------------------------
// Registry (server side)

// Admission is the execute-queue contract the registry dispatches
// non-system requests through (an interface, not *core.ExecuteQueue,
// because core sits above rmi in the import graph). Submit either accepts
// the task for asynchronous execution or returns an error, which the
// registry reports as a wire-level BUSY response: the request was refused
// before any application code ran, so the caller may safely fail over.
type Admission interface {
	Submit(task func()) error
}

// Registry dispatches inbound invocations on one server and advertises its
// services cluster-wide.
type Registry struct {
	node   Node
	member *cluster.Member
	reg    *metrics.Registry
	clock  vclock.Clock
	// tracer continues inbound traces (atomic: it is wired after the
	// handler is installed, and frames may already be arriving).
	tracer atomic.Pointer[trace.Tracer]
	// admission, when set, is the execute queue all non-system requests
	// pass through (atomic for the same wiring-order reason as tracer).
	admission atomic.Pointer[Admission]

	// selfName caches the (immutable) local server name; Member.Self()
	// deep-copies the whole MemberInfo, which is too expensive per request.
	selfName string

	// requests counts all inbound calls; resolved once at construction
	// to keep metric lookups off the per-request path.
	requests *metrics.Counter
	// busy counts BUSY responses sent (admission denials + expiries).
	busy *metrics.Counter

	mu       sync.Mutex
	services map[string]*Service
}

// NewRegistry installs a registry as the node's frame handler. Frames that
// are not RMI requests fall through to the handler previously installed on
// the node, so multiple subsystems can share one node.
func NewRegistry(node Node, member *cluster.Member, reg *metrics.Registry) *Registry {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r := &Registry{
		node:     node,
		member:   member,
		reg:      reg,
		clock:    member.Clock(),
		selfName: member.Name(),
		requests: reg.Counter("rmi.requests"),
		busy:     reg.Counter("rmi.busy"),
		services: make(map[string]*Service),
	}
	node.SetHandler(r.handle)
	r.registerBuiltins()
	return r
}

// Node returns the underlying transport node.
func (r *Registry) Node() Node { return r.node }

// Member returns the cluster member this registry advertises through.
func (r *Registry) Member() *cluster.Member { return r.member }

// Metrics returns the server's metrics registry.
func (r *Registry) Metrics() *metrics.Registry { return r.reg }

// SetTracer installs the tracer that continues traces arriving in request
// envelopes. A nil tracer (the default) disables server-side spans.
func (r *Registry) SetTracer(t *trace.Tracer) { r.tracer.Store(t) }

// Tracer returns the installed tracer, or nil.
func (r *Registry) Tracer() *trace.Tracer { return r.tracer.Load() }

// SetAdmission routes all non-system inbound requests through q. A nil q
// (the default) executes requests inline on the transport's goroutine.
func (r *Registry) SetAdmission(q Admission) {
	if q == nil {
		r.admission.Store(nil)
		return
	}
	r.admission.Store(&q)
}

// Register deploys a service on this server and advertises it.
func (r *Registry) Register(s *Service) {
	// Resolve the per-service counter before the service becomes
	// reachable: handle reads it without holding r.mu.
	s.requests = r.reg.Counter("rmi.requests." + s.Name)
	// Resolve canonical method names so dispatch can fill Call.Method
	// without allocating a string from the wire bytes.
	for k, ms := range s.Methods {
		ms.name = k
		s.Methods[k] = ms
	}
	r.mu.Lock()
	r.services[s.Name] = s
	r.mu.Unlock()
	r.member.Advertise(s.Name)
}

// Unregister undeploys a service and withdraws its advertisement.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	delete(r.services, name)
	r.mu.Unlock()
	r.member.Withdraw(name)
}

// Deployed reports whether the named service is deployed locally.
func (r *Registry) Deployed(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.services[name]
	return ok
}

// handle is the node frame handler. The request fields are decoded
// in place: service and method resolve through no-allocation map lookups
// on the raw wire bytes, the Call comes from a pool, and its Args alias
// the frame body (both node implementations hand the handler an owned
// body for the duration of the call, and handlers must not retain it).
//
//wls:hotpath
func (r *Registry) handle(from string, f wire.Frame) *wire.Frame {
	if f.Kind != wire.KindRequest {
		return nil
	}
	self := r.selfName
	d := wire.NewDecoder(f.Body)
	svcB := d.BytesNoCopy()
	methB := d.BytesNoCopy()
	txB := d.BytesNoCopy()
	convB := d.BytesNoCopy()
	argsB := d.BytesNoCopy()
	if d.Err() != nil {
		return &wire.Frame{Kind: wire.KindResponse, Corr: f.Corr, //wls:nolint hotalloc -- malformed-request reply, never taken on healthy traffic
			Body: encodeResponse(respSystemError, r.node.Addr(), "malformed request", nil)}
	}
	remaining, hasBudget, err := parseDeadline(d)
	if err != nil {
		return &wire.Frame{Kind: wire.KindResponse, Corr: f.Corr, //wls:nolint hotalloc -- malformed-request reply, never taken on healthy traffic
			Body: encodeResponse(respSystemError, r.node.Addr(), "malformed request", nil)}
	}
	sc, err := trace.ParseEnvelope(d)
	if err != nil {
		return &wire.Frame{Kind: wire.KindResponse, Corr: f.Corr, //wls:nolint hotalloc -- malformed-request reply, never taken on healthy traffic
			Body: encodeResponse(respSystemError, r.node.Addr(), "malformed request", nil)}
	}

	r.mu.Lock()
	svc, ok := r.services[string(svcB)] // compiler-recognized no-alloc lookup
	r.mu.Unlock()
	if !ok {
		return &wire.Frame{Kind: wire.KindResponse, Corr: f.Corr, //wls:nolint hotalloc -- unknown-service reply, deploy-time misconfiguration path
			Body: encodeResponse(respNoSuchService, self, "no such service: "+string(svcB), nil)}
	}
	m, ok := svc.Methods[string(methB)]
	if !ok {
		return &wire.Frame{Kind: wire.KindResponse, Corr: f.Corr, //wls:nolint hotalloc -- unknown-method reply, deploy-time misconfiguration path
			Body: encodeResponse(respNoSuchService, self, "no such method: "+string(svcB)+"."+string(methB), nil)}
	}

	// Re-derive the caller's budget against this server's clock. Work that
	// arrives already expired is refused before counting as a request: the
	// caller stopped waiting, so executing it would be pure waste (and BUSY
	// truthfully promises no side effects).
	ctx := context.Background()
	var budget Budget
	if hasBudget {
		if remaining <= 0 {
			return r.busyFrame(f.Corr, self, "deadline expired on arrival")
		}
		budget = Budget{clock: r.clock, deadline: r.clock.Now().Add(remaining)}
		ctx = context.WithValue(ctx, budgetKey{}, budget)
	}

	r.requests.Inc()
	svc.requests.Inc()

	call := callPool.Get().(*Call)
	call.From = from
	call.Service = svc.Name // canonical strings: no conversion of wire bytes
	call.Method = m.name
	call.Args = argsB
	if len(txB) > 0 {
		call.TxID = string(txB)
	}
	if len(convB) > 0 {
		call.ConvID = string(convB)
	}

	if qp := r.admission.Load(); qp != nil && !m.System && !svc.System {
		return r.dispatchQueued(ctx, *qp, f.Corr, self, call, sc, m, budget)
	}
	fr := r.execute(ctx, f.Corr, self, call, sc, m)
	releaseCall(call)
	return fr
}

func (r *Registry) busyFrame(corr uint64, self, msg string) *wire.Frame {
	r.busy.Inc()
	return &wire.Frame{Kind: wire.KindResponse, Corr: corr,
		Body: encodeResponse(respBusy, self, msg, nil)}
}

// dispatchQueued routes one admitted-or-refused request through the
// server's execute queue (§2.3). The transport goroutine blocks for the
// outcome; under a budget it stops waiting at the deadline, and an atomic
// claim decides the request's fate exactly once — either a worker runs it,
// or the timeout abandons it while still queued and BUSY's no-side-effects
// promise stays truthful.
func (r *Registry) dispatchQueued(ctx context.Context, q Admission, corr uint64,
	self string, call *Call, sc trace.SpanContext, m MethodSpec, budget Budget) *wire.Frame {
	done := make(chan *wire.Frame, 1)
	var claimed atomic.Bool
	err := q.Submit(func() {
		if !claimed.CompareAndSwap(false, true) {
			return // abandoned at deadline while queued: BUSY already sent
		}
		fr := r.execute(ctx, corr, self, call, sc, m)
		releaseCall(call)
		done <- fr
	})
	if err != nil {
		releaseCall(call) // never submitted: the closure will not run
		return r.busyFrame(corr, self, err.Error())
	}
	if budget.Valid() {
		select {
		case fr := <-done:
			return fr
		case <-budget.clock.After(budget.Remaining()):
			if claimed.CompareAndSwap(false, true) {
				// Winning the claim means the queued closure will return
				// without touching call, so recycling it here is safe.
				releaseCall(call)
				return r.busyFrame(corr, self, "deadline expired in queue")
			}
			// A worker claimed it first: the handler is running, so report
			// its true outcome (the caller's own deadline gate discards it).
			return <-done
		}
	}
	return <-done
}

// execute runs one request's handler and encodes the response.
//
//wls:hotpath
func (r *Registry) execute(ctx context.Context, corr uint64, self string,
	call *Call, sc trace.SpanContext, m MethodSpec) *wire.Frame {
	var span *trace.Span
	if tr := r.tracer.Load(); tr != nil && sc.Sampled {
		ctx, span = tr.StartRemote(ctx, sc, "rmi.serve "+call.Service+"."+call.Method, trace.KindServer)
		span.Annotate("from", call.From)
	}
	body, err := m.Handler(ctx, call)
	if span != nil {
		span.SetError(err)
		span.Finish()
	}
	switch {
	case err == nil:
		return &wire.Frame{Kind: wire.KindResponse, Corr: corr,
			Body: encodeResponse(respOK, self, "", body)}
	case IsAppError(err):
		return &wire.Frame{Kind: wire.KindResponse, Corr: corr,
			Body: encodeResponse(respAppError, self, err.Error(), nil)}
	default:
		return &wire.Frame{Kind: wire.KindResponse, Corr: corr,
			Body: encodeResponse(respSystemError, self, err.Error(), nil)}
	}
}

// ---------------------------------------------------------------------------
// Views

// View supplies the candidate servers currently offering a service. The
// internal view reads live membership; the external view reads a cached
// copy (§2.2).
type View interface {
	// Candidates returns members offering the service, in ring order.
	Candidates(service string) []cluster.MemberInfo
	// LocalName returns the name of the local server, or "" for external
	// clients (used by the local-preference policy).
	LocalName() string
}

// MemberView is the internal-client view backed directly by live
// membership.
type MemberView struct{ Member *cluster.Member }

// Candidates implements View.
func (v MemberView) Candidates(service string) []cluster.MemberInfo {
	return v.Member.OffersOf(service)
}

// LocalName implements View.
func (v MemberView) LocalName() string { return v.Member.Name() }
