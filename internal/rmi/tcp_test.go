package rmi_test

import (
	"context"
	"testing"
	"time"

	"wls/internal/cluster"
	"wls/internal/gossip"
	"wls/internal/rmi"
	"wls/internal/transport"
	"wls/internal/vclock"
)

// TestFullStackOverRealTCP runs the cluster protocols over real sockets:
// the same Registry/Stub code paths the simulation exercises, with
// transport.Transport as the rmi.Node. This is the parity check that the
// Node abstraction holds on both fabrics.
func TestFullStackOverRealTCP(t *testing.T) {
	clk := vclock.System
	bus := gossip.NewInMemory(clk, 1)
	cfg := cluster.Config{Name: "tcp", HeartbeatInterval: 50 * time.Millisecond, FailureTimeout: 200 * time.Millisecond}

	type srv struct {
		tr  *transport.Transport
		m   *cluster.Member
		reg *rmi.Registry
	}
	var servers []*srv
	for i := 0; i < 3; i++ {
		tr, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		m := cluster.NewMember(cfg, clk, bus, cluster.MemberInfo{
			Name:    "tcp-" + string(rune('a'+i)),
			Addr:    tr.Addr(),
			Machine: "m" + string(rune('1'+i)),
		})
		reg := rmi.NewRegistry(tr, m, nil)
		m.Start()
		servers = append(servers, &srv{tr, m, reg})
		t.Cleanup(func() { m.Stop(); tr.Close() })
	}
	for _, s := range servers {
		name := s.m.Self().Name
		s.reg.Register(&rmi.Service{
			Name: "Echo",
			Methods: map[string]rmi.MethodSpec{
				"echo": {Idempotent: true, Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
					return append([]byte(name+":"), c.Args...), nil
				}},
			},
		})
	}
	time.Sleep(200 * time.Millisecond) // real heartbeats converge

	stub := rmi.NewStub("Echo", servers[0].tr,
		rmi.MemberView{Member: servers[0].m}, rmi.WithPolicy(rmi.NewRoundRobin()))
	seen := map[string]bool{}
	for i := 0; i < 9; i++ {
		res, err := stub.Invoke(context.Background(), "echo", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		seen[res.ServedBy] = true
	}
	if len(seen) != 3 {
		t.Fatalf("TCP round robin hit %d servers, want 3", len(seen))
	}

	// Failover over TCP: kill one server; dial failures are classified as
	// request-never-sent and retried on the survivors.
	servers[2].m.Stop()
	servers[2].tr.Close()
	for i := 0; i < 6; i++ {
		res, err := stub.Invoke(context.Background(), "echo", []byte("y"))
		if err != nil {
			t.Fatalf("TCP failover: %v", err)
		}
		if res.ServedBy == "tcp-c" {
			t.Fatal("dead server served a request")
		}
	}
}

// TestExternalClientOverTCP bootstraps an external tightly-coupled client
// against the TCP cluster-view service.
func TestExternalClientOverTCP(t *testing.T) {
	clk := vclock.System
	bus := gossip.NewInMemory(clk, 1)
	cfg := cluster.Config{Name: "tcp2", HeartbeatInterval: 50 * time.Millisecond, FailureTimeout: 200 * time.Millisecond}

	tr, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	m := cluster.NewMember(cfg, clk, bus, cluster.MemberInfo{Name: "solo", Addr: tr.Addr(), Machine: "m1"})
	reg := rmi.NewRegistry(tr, m, nil)
	m.Start()
	defer m.Stop()
	reg.Register(&rmi.Service{
		Name: "Time",
		Methods: map[string]rmi.MethodSpec{
			"now": {Idempotent: true, Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
				return []byte("tick"), nil
			}},
		},
	})

	clientTr, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer clientTr.Close()
	ec := rmi.NewExternalClient(clientTr, clk, time.Second, tr.Addr())
	if err := ec.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := ec.Stub("Time").Invoke(context.Background(), "now", nil)
	if err != nil || string(res.Body) != "tick" {
		t.Fatalf("external TCP client: %q err=%v", res.Body, err)
	}
}
