package rmi_test

import (
	"context"
	"strings"
	"testing"

	"wls/internal/cluster"
	"wls/internal/rmi"
	"wls/internal/simtest"
	"wls/internal/trace"
	"wls/internal/wire"
)

// traceUp wires tracers (100% sampling, shared ring) onto the given
// servers and returns the ring plus a client-side tracer named "client".
func traceUp(f *simtest.Fixture, servers ...*simtest.Server) (*trace.Ring, *trace.Tracer) {
	ring := trace.NewRing(1024)
	for _, s := range servers {
		s.Registry.SetTracer(trace.New(s.Name, f.Clock, trace.Options{Exporter: ring}))
	}
	return ring, trace.New("client", f.Clock, trace.Options{Exporter: ring})
}

func TestTracePropagatesAcrossServers(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	ring, ctr := traceUp(f, f.Servers...)

	ctx, root := ctr.StartRoot(context.Background(), "req", trace.KindInternal)
	stub := f.Servers[0].Stub("Echo", rmi.WithPolicy(rmi.NewRoundRobin()))
	res, err := stub.Invoke(ctx, "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	root.Finish()

	spans := ring.Snapshot()
	id := root.TraceID()
	// attempt -> rmi.call -> root on the client, plus one server span.
	byName := map[string]trace.SpanData{}
	for _, d := range trace.Filter(spans, id) {
		byName[d.Name] = d
	}
	call, ok := byName["rmi.call Echo.echo"]
	if !ok {
		t.Fatalf("no client call span in %v", byName)
	}
	att, ok := byName["rmi.attempt"]
	if !ok || att.Parent != call.ID {
		t.Fatalf("attempt span missing or misparented: %+v", att)
	}
	srv, ok := byName["rmi.serve Echo.echo"]
	if !ok {
		t.Fatal("no server span")
	}
	if srv.Parent != att.ID {
		t.Fatalf("server span parent = %s, want attempt %s", srv.Parent, att.ID)
	}
	if srv.Server != res.ServedBy {
		t.Fatalf("server span on %s, but request served by %s", srv.Server, res.ServedBy)
	}
	if got := trace.ServersTouched(spans, id); len(got) != 1 || got[0] != res.ServedBy {
		t.Fatalf("ServersTouched = %v, want [%s]", got, res.ServedBy)
	}
	if hops := trace.HopCount(spans, id); hops != 1 {
		t.Fatalf("HopCount = %d, want 1", hops)
	}
}

// TestMixedVersionTracedCallerUntracedHandler: a traced caller sends the
// envelope to a server without a tracer — the pre-tracing decode path. The
// request must behave identically to an untraced one.
func TestMixedVersionTracedCallerUntracedHandler(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	ring := trace.NewRing(64)
	ctr := trace.New("client", f.Clock, trace.Options{Exporter: ring})
	// Note: no SetTracer on any registry.

	ctx, root := ctr.StartRoot(context.Background(), "req", trace.KindInternal)
	stub := f.Servers[0].Stub("Echo")
	res, err := stub.Invoke(ctx, "echo", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(res.Body), ":payload") {
		t.Fatalf("handler saw a different request: %q", res.Body)
	}
	root.Finish()
	for _, d := range ring.Snapshot() {
		if d.Kind == trace.KindServer {
			t.Fatalf("untraced handler produced a server span: %+v", d)
		}
	}
}

// TestMixedVersionUntracedCallerTracedHandler: an old-style request with
// no envelope reaching a traced server must be handled identically to
// today — no span, no error.
func TestMixedVersionUntracedCallerTracedHandler(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	ring, _ := traceUp(f, f.Servers...)

	stub := f.Servers[0].Stub("Echo")
	res, err := stub.Invoke(context.Background(), "echo", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(res.Body), ":payload") {
		t.Fatalf("handler saw a different request: %q", res.Body)
	}
	if n := ring.Total(); n != 0 {
		t.Fatalf("untraced request produced %d spans", n)
	}
}

// orderPolicy is a test policy with a fixed server-name order.
type orderPolicy struct{ names []string }

func (p orderPolicy) Order(_ context.Context, _ string, cands []cluster.MemberInfo) []cluster.MemberInfo {
	byName := map[string]cluster.MemberInfo{}
	for _, c := range cands {
		byName[c.Name] = c
	}
	out := make([]cluster.MemberInfo, 0, len(cands))
	for _, n := range p.names {
		if c, ok := byName[n]; ok {
			out = append(out, c)
		}
	}
	return out
}

func TestFailoverRetriesAreDistinctChildSpans(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	ring, ctr := traceUp(f, f.Servers...)

	// Kill server-2, then force the stub to try it first: the dead attempt
	// and the successful retry must both appear as children, with only the
	// final attempt marked.
	f.Servers[1].Endpoint.Close()
	ctx, root := ctr.StartRoot(context.Background(), "req", trace.KindInternal)
	stub := f.Servers[0].Stub("Echo",
		rmi.WithPolicy(orderPolicy{names: []string{"server-2", "server-3", "server-1"}}))
	res, err := stub.Invoke(ctx, "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "server-3" {
		t.Fatalf("served by %s, want server-3", res.ServedBy)
	}
	root.Finish()

	var attempts []trace.SpanData
	for _, d := range trace.Filter(ring.Snapshot(), root.TraceID()) {
		if d.Name == "rmi.attempt" {
			attempts = append(attempts, d)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("got %d attempt spans, want 2", len(attempts))
	}
	ann := func(d trace.SpanData, key string) string {
		for _, a := range d.Annotations {
			if a.Key == key {
				return a.Value
			}
		}
		return ""
	}
	first, second := attempts[0], attempts[1]
	if ann(first, "attempt") != "1" {
		first, second = second, first
	}
	if ann(first, "target") != "server-2" || first.Error == "" || ann(first, "final") == "true" {
		t.Fatalf("failed attempt span wrong: %+v", first)
	}
	if ann(second, "target") != "server-3" || second.Error != "" || ann(second, "final") != "true" {
		t.Fatalf("final attempt span wrong: %+v", second)
	}
	if first.Parent != second.Parent || first.ID == second.ID {
		t.Fatalf("attempts are not distinct siblings: %+v %+v", first, second)
	}
}

// TestTracingDisabledEchoAllocs pins the allocation budget of the echo
// path with tracing disabled. The value is the pre-tracing rmi budget
// (Call/Result/response envelopes; the wire/transport layer underneath is
// 0-alloc per PR 2) — the tracing hooks on the path (context probe,
// envelope skip, headerless parse) must not add a single allocation.
func TestTracingDisabledEchoAllocs(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 1})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	stub := f.Servers[0].Stub("Echo", rmi.WithPolicy(rmi.NewRoundRobin()))
	ctx := context.Background()
	args := []byte("hi")
	if n := testing.AllocsPerRun(500, func() {
		if _, err := stub.Invoke(ctx, "echo", args); err != nil {
			t.Fatal(err)
		}
	}); n > 23 {
		t.Fatalf("tracing-disabled echo path allocates %v/op, budget 23", n)
	}
}

// TestUnsampledEchoAllocs pins the other half of the fast path: tracers
// installed everywhere, but the root unsampled — the per-request tracing
// cost must stay zero even with tracing wired.
func TestUnsampledEchoAllocs(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 1})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	ring, _ := traceUp(f, f.Servers...)
	never := trace.New("client", f.Clock, trace.Options{Sampler: trace.Never(), Exporter: ring})
	stub := f.Servers[0].Stub("Echo", rmi.WithPolicy(rmi.NewRoundRobin()))
	args := []byte("hi")
	if n := testing.AllocsPerRun(500, func() {
		ctx, span := never.StartRoot(context.Background(), "req", trace.KindInternal)
		if _, err := stub.Invoke(ctx, "echo", args); err != nil {
			t.Fatal(err)
		}
		span.Finish()
	}); n > 23 {
		t.Fatalf("unsampled echo path allocates %v/op, budget 23", n)
	}
	if ring.Total() != 0 {
		t.Fatal("unsampled requests exported spans")
	}
}

// FuzzRequestBody feeds arbitrary request bodies straight into a live
// server's frame handler: malformed bodies (including corrupt trace
// envelopes) must produce an error response, never a panic.
func FuzzRequestBody(f *testing.F) {
	e := wire.NewEncoder(64)
	e.String("Echo")
	e.String("echo")
	e.String("")
	e.String("")
	e.Bytes2([]byte("hi"))
	base := append([]byte(nil), e.Bytes()...)
	f.Add(base)
	f.Add(append(base, 0xC7))             // truncated envelope
	f.Add(append(base, 0xC7, 0x01))       // still truncated
	f.Add(append(base, 0x00, 0x01, 0x02)) // garbage tail
	f.Add([]byte{})                       // empty body
	f.Add([]byte{0xFF, 0xFF, 0xFF})       // garbage body
	f.Add(append(base, 0xD9))             // truncated deadline block
	f.Add(append(base, 0xD9, 0x02))       // unknown deadline version
	f.Add(append(base, 0xD9, 0x01, 0x80)) // truncated remaining varint
	withDeadline := append(append([]byte(nil), base...), 0xD9, 0x01, 0x00)
	f.Add(withDeadline)                     // expired on arrival
	f.Add(append(withDeadline, 0xC7))       // valid deadline, truncated envelope
	f.Add(append(withDeadline, 0xC7, 0x01)) // both tails, still truncated
	f.Fuzz(func(t *testing.T, body []byte) {
		fx := simtest.New(simtest.Options{Servers: 1})
		defer fx.Stop()
		deployEcho(fx.Servers...)
		fx.Settle(1)
		ring, _ := traceUp(fx, fx.Servers...)
		_ = ring
		// Drive the raw frame path (bypassing the stub's well-formed
		// encoder) against the server endpoint.
		client := fx.Net.Endpoint("10.9.9.9:1")
		_, _ = client.Call(context.Background(), fx.Servers[0].Endpoint.Addr(),
			wire.Frame{Kind: wire.KindRequest, Body: body})
	})
}
