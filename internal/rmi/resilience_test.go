package rmi_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wls/internal/core"
	"wls/internal/metrics"
	"wls/internal/rmi"
	"wls/internal/simtest"
)

// Black-box coverage of the stub's resilience integration: cancellation
// between failover attempts, the shared retry budget, breaker-driven
// recovery, and BUSY-triggered failover.

// TestInvokeAbandonedWhenCtxCancelled is the regression test for the stub
// ignoring ctx between failover attempts: a cancelled caller must stop
// before dialing anything, and no handler may run on its behalf.
func TestInvokeAbandonedWhenCtxCancelled(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	var served atomic.Int64
	for _, s := range f.Servers {
		s.Registry.Register(&rmi.Service{
			Name: "Count",
			Methods: map[string]rmi.MethodSpec{
				"hit": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
					served.Add(1)
					return nil, nil
				}},
			},
		})
	}
	f.Settle(2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.Servers[0].Stub("Count").Invoke(ctx, "hit", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := served.Load(); n != 0 {
		t.Fatalf("cancelled invoke still ran %d handlers", n)
	}
}

// TestRetryBudgetExhausted: with every target unreachable, the token
// bucket drains and further failover attempts are refused — the caller
// gets a terminal error instead of amplifying the outage with retries.
func TestRetryBudgetExhausted(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	addr2 := f.Servers[1].Endpoint.Addr()
	addr3 := f.Servers[2].Endpoint.Addr()
	f.Crash(f.Servers[1].Name)
	f.Crash(f.Servers[2].Name)
	stop := advancer(f)
	defer stop()

	reg := metrics.NewRegistry()
	res := rmi.NewResilience(rmi.ResilienceConfig{RetryBudget: 1, RetryRatio: 0.0001}, f.Clock, reg)
	stub := rmi.NewStub("Echo", f.Servers[0].Endpoint,
		rmi.StaticView(addr2, addr3), rmi.WithResilience(res))

	// First invoke spends the only banked token failing over addr2 → addr3.
	_, err := stub.Invoke(context.Background(), "echo", nil)
	if err == nil {
		t.Fatal("invoke against crashed servers succeeded")
	}
	if got := reg.Counter("rmi.retries").Value(); got != 1 {
		t.Fatalf("rmi.retries = %d, want 1", got)
	}
	// Second invoke fails its first attempt and is refused the retry.
	_, err = stub.Invoke(context.Background(), "echo", nil)
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("want retry-budget exhaustion, got %v", err)
	}
	if got := reg.Counter("rmi.retry.denied").Value(); got != 1 {
		t.Fatalf("rmi.retry.denied = %d, want 1", got)
	}
}

// TestBreakerOpensAndRecloses drives one server's breaker through the full
// cycle against a live cluster: repeated transport failures open it, and
// after the server restarts a cooled-down probe re-closes it.
func TestBreakerOpensAndRecloses(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	target := f.Servers[1]
	name, addr := target.Name, target.Endpoint.Addr()

	cfg := rmi.ResilienceConfig{BreakerThreshold: 2, BreakerCooldown: 200 * time.Millisecond}
	res := rmi.NewResilience(cfg, f.Clock, nil)
	stub := rmi.NewStub("Echo", f.Servers[0].Endpoint,
		rmi.NamedStaticView(name, addr), rmi.WithResilience(res))

	f.Crash(name)
	for i := 0; i < cfg.BreakerThreshold; i++ {
		if _, err := stub.Invoke(context.Background(), "echo", nil); err == nil {
			t.Fatalf("invoke %d against crashed %s succeeded", i, name)
		}
	}
	if st := res.State(name); st != rmi.BreakerOpen {
		t.Fatalf("breaker after %d failures = %v, want open", cfg.BreakerThreshold, st)
	}

	deployEcho(f.Restart(name))
	f.VClock.Advance(cfg.BreakerCooldown)
	res2, err := stub.Invoke(context.Background(), "echo", []byte("probe"))
	if err != nil {
		t.Fatalf("probe after restart failed: %v", err)
	}
	if res2.ServedBy != name {
		t.Fatalf("probe served by %s, want %s", res2.ServedBy, name)
	}
	if st := res.State(name); st != rmi.BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", st)
	}
}

// TestBusyFailoverToNextServer: a BUSY refusal is side-effect-free by
// contract, so the stub fails over even for non-idempotent methods — and
// the refused request never touches application code.
func TestBusyFailoverToNextServer(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	full := f.Servers[0]
	next := f.Servers[1]

	// Stuff server-1's execute queue: one task occupies the only worker,
	// another fills the one queue slot, so the next submit is denied.
	q := core.NewExecuteQueue(core.QueueConfig{Workers: 1, QueueLen: 1, Policy: core.Deny}, f.Clock, full.Metrics)
	defer q.Close()
	block := make(chan struct{})
	defer close(block)
	if err := q.Submit(func() { <-block }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		// The worker dequeues the blocker asynchronously; keep topping the
		// queue up until one filler sticks as the queued (undequeued) task.
		if err := q.Submit(func() {}); err == nil && full.Metrics.Gauge("queue.depth").Value() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("could not fill the execute queue")
		}
		time.Sleep(time.Millisecond)
	}
	full.Registry.SetAdmission(q)

	stop := advancer(f)
	defer stop()
	res := rmi.NewResilience(rmi.ResilienceConfig{}, f.Clock, nil)
	stub := f.Servers[2].Stub("Echo",
		rmi.WithPolicy(orderPolicy{names: []string{full.Name, next.Name}}),
		rmi.WithResilience(res))
	got, err := stub.Invoke(context.Background(), "echo", []byte("hi"))
	if err != nil {
		t.Fatalf("invoke with one busy server failed: %v", err)
	}
	if got.ServedBy != next.Name {
		t.Fatalf("served by %s, want failover to %s", got.ServedBy, next.Name)
	}
	if v := full.Metrics.Counter("rmi.busy").Value(); v == 0 {
		t.Fatal("busy refusal not counted on the refusing server")
	}
}
