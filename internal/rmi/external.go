package rmi

import (
	"context"
	"errors"
	"sync"
	"time"

	"wls/internal/cluster"
	"wls/internal/vclock"
)

// ViewServiceName is the built-in service every registry deploys so that
// external tightly-coupled clients can "occasionally contact a member of
// the cluster to obtain load-balancing and failover information and cache
// it locally" (§2.2).
const ViewServiceName = "wls.cluster"

// viewMethod returns the advertising member's current live view.
const viewMethod = "view"

// registerBuiltins deploys the cluster-view service.
func (r *Registry) registerBuiltins() {
	r.Register(&Service{
		Name:   ViewServiceName,
		System: true,
		Methods: map[string]MethodSpec{
			viewMethod: {
				Idempotent: true,
				Handler: func(ctx context.Context, call *Call) ([]byte, error) {
					return cluster.EncodeMembers(r.member.Alive()), nil
				},
			},
		},
	})
}

// ExternalClient is a tightly-coupled client running outside the cluster
// (§2.2). It bootstraps its view of the cluster from one or more known
// addresses, caches it, and refreshes it periodically on its own clock —
// it never participates in cluster heartbeating.
type ExternalClient struct {
	node      Node
	clock     vclock.Clock
	bootstrap []string
	interval  time.Duration

	mu      sync.Mutex
	members []cluster.MemberInfo
	timer   vclock.Timer
	stopped bool
}

// ErrNoBootstrap means no bootstrap address answered the view query.
var ErrNoBootstrap = errors.New("rmi: no bootstrap server reachable")

// NewExternalClient creates a client that refreshes its cached cluster view
// every interval from the bootstrap addresses. Call Refresh once (or Start)
// before creating stubs.
func NewExternalClient(node Node, clock vclock.Clock, interval time.Duration, bootstrap ...string) *ExternalClient {
	return &ExternalClient{node: node, clock: clock, bootstrap: bootstrap, interval: interval}
}

// Refresh fetches the cluster view now, trying each bootstrap address and
// then each previously known member until one answers.
func (c *ExternalClient) Refresh(ctx context.Context) error {
	tried := make(map[string]bool)
	attempt := func(addr string) bool {
		if addr == "" || tried[addr] {
			return false
		}
		tried[addr] = true
		stub := NewStub(ViewServiceName, c.node, StaticView(addr))
		res, err := stub.Invoke(ctx, viewMethod, nil)
		if err != nil {
			return false
		}
		ms, err := cluster.DecodeMembers(res.Body)
		if err != nil {
			return false
		}
		c.mu.Lock()
		c.members = ms
		c.mu.Unlock()
		return true
	}
	for _, addr := range c.bootstrap {
		if attempt(addr) {
			return nil
		}
	}
	c.mu.Lock()
	known := append([]cluster.MemberInfo(nil), c.members...)
	c.mu.Unlock()
	for _, m := range known {
		if attempt(m.Addr) {
			return nil
		}
	}
	return ErrNoBootstrap
}

// Start begins periodic background refresh.
func (c *ExternalClient) Start() {
	c.mu.Lock()
	c.stopped = false
	c.mu.Unlock()
	c.scheduleRefresh()
}

func (c *ExternalClient) scheduleRefresh() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.timer = c.clock.AfterFunc(c.interval, func() {
		ctx, cancel := context.WithTimeout(context.Background(), c.interval)
		_ = c.Refresh(ctx)
		cancel()
		c.scheduleRefresh()
	})
	c.mu.Unlock()
}

// Stop halts background refresh.
func (c *ExternalClient) Stop() {
	c.mu.Lock()
	c.stopped = true
	t := c.timer
	c.timer = nil
	c.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}

// Members returns the cached cluster view.
func (c *ExternalClient) Members() []cluster.MemberInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]cluster.MemberInfo(nil), c.members...)
}

// Candidates implements View against the cached copy.
func (c *ExternalClient) Candidates(service string) []cluster.MemberInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []cluster.MemberInfo
	for _, m := range c.members {
		if m.OffersService(service) {
			out = append(out, m)
		}
	}
	return out
}

// LocalName implements View; external clients have no local server.
func (c *ExternalClient) LocalName() string { return "" }

// Stub creates a stub for service backed by this client's cached view.
func (c *ExternalClient) Stub(service string, opts ...StubOption) *Stub {
	return NewStub(service, c.node, c, opts...)
}

// StaticView returns a View listing fixed addresses that are assumed to
// offer every service. It is used to bootstrap before any live view is
// known and to address a specific server directly (e.g. a transaction
// branch participant).
func StaticView(addrs ...string) View { return makeStaticView("", addrs) }

// NamedStaticView returns a single-member View with an explicit member
// name. Client-side resilience keys breakers by candidate name, so
// callers that dial a fixed address on a known member (routers, breaker
// probes) use this to share breaker state with stubs built from live
// views; plain StaticView candidates are named by their address.
func NamedStaticView(name, addr string) View {
	return makeStaticView(name, []string{addr})
}

// staticView lets the bootstrap query target a fixed address before any
// view is known. Its candidate list is fixed, so it is built once at
// construction and shared read-only with every Candidates caller —
// consumers of View.Candidates must not reorder results in place (the
// load-balancing policies all copy before permuting).
type staticView struct {
	cands []cluster.MemberInfo
}

func makeStaticView(name string, addrs []string) staticView {
	out := make([]cluster.MemberInfo, 0, len(addrs))
	for _, a := range addrs {
		n := a
		if name != "" {
			n = name
		}
		out = append(out, cluster.MemberInfo{Name: n, Addr: a, Services: []string{ViewServiceName}})
	}
	return staticView{cands: out}
}

func (v staticView) Candidates(string) []cluster.MemberInfo { return v.cands }

func (v staticView) LocalName() string { return "" }
