package rmi_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"wls/internal/rmi"
	"wls/internal/simtest"
	"wls/internal/trace"
	"wls/internal/wire"
)

// advancer drives the virtual clock from a background goroutine so the
// foreground test can block inside a budgeted call (latency delivery,
// backoff sleeps and budget timers all fire on the virtual clock).
func advancer(f *simtest.Fixture) (stop func()) {
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				f.VClock.Advance(5 * time.Millisecond)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	return func() { close(done) }
}

// deployBudgetReport registers a service whose handler reports the budget
// it observed: a bool (budget present) and the remaining nanos.
func deployBudgetReport(name string, servers ...*simtest.Server) {
	for _, s := range servers {
		s.Registry.Register(&rmi.Service{
			Name: name,
			Methods: map[string]rmi.MethodSpec{
				"report": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
					e := wire.NewEncoder(16)
					b, ok := rmi.BudgetFrom(ctx)
					e.Bool(ok)
					if ok {
						e.Uint64(uint64(b.Remaining()))
					} else {
						e.Uint64(0)
					}
					return e.Bytes(), nil
				}},
			},
		})
	}
}

func decodeReport(t *testing.T, body []byte) (bool, time.Duration) {
	t.Helper()
	d := wire.NewDecoder(body)
	ok := d.Bool()
	rem := time.Duration(d.Uint64())
	if err := d.Err(); err != nil {
		t.Fatalf("bad report body: %v", err)
	}
	return ok, rem
}

// TestBudgetPropagatesAndShrinksAcrossHops: the client grants 2s; the
// middle server burns 50ms of work before making a nested hop with the
// caller context. Both servers must observe a budget, and the deeper
// server must observe one smaller by at least the work it waited behind —
// the shrinking-budget contract that makes nested hops deadline-aware.
func TestBudgetPropagatesAndShrinksAcrossHops(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployBudgetReport("Budget3", f.Servers[2])
	// Server-2's handler works for 50ms, then makes the nested hop with
	// the caller context, so the shrunken budget rides along automatically.
	const work = 50 * time.Millisecond
	clk := f.Clock
	nested := f.Servers[1].Stub("Budget3")
	f.Servers[1].Registry.Register(&rmi.Service{
		Name: "Budget2",
		Methods: map[string]rmi.MethodSpec{
			"report": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
				b, ok := rmi.BudgetFrom(ctx)
				if !ok {
					return nil, errors.New("no budget at server-2")
				}
				mine := b.Remaining()
				clk.Sleep(work)
				res, err := nested.Invoke(ctx, "report", nil)
				if err != nil {
					return nil, err
				}
				e := wire.NewEncoder(24)
				e.Uint64(uint64(mine))
				e.Bytes2(res.Body)
				return e.Bytes(), nil
			}},
		},
	})
	f.Settle(2)
	f.Net.SetLatency(f.Servers[1].Endpoint.Addr(), f.Servers[2].Endpoint.Addr(), 10*time.Millisecond)
	stop := advancer(f)
	defer stop()

	const grant = 2 * time.Second
	ctx := rmi.WithBudget(context.Background(), f.Clock, grant)
	res, err := f.Servers[0].Stub("Budget2").Invoke(ctx, "report", nil)
	if err != nil {
		t.Fatal(err)
	}
	d := wire.NewDecoder(res.Body)
	rem2 := time.Duration(d.Uint64())
	ok3, rem3 := decodeReport(t, d.Bytes())
	if !ok3 {
		t.Fatal("server-3 saw no budget")
	}
	if rem2 > grant || rem2 <= grant/2 {
		t.Fatalf("server-2 remaining %v, want in (1s, 2s]", rem2)
	}
	// rem3 was measured after server-2's 50ms of work (and a 10ms hop), so
	// it must trail rem2 by at least the work — allow scheduling slack.
	if rem3 > rem2-work+10*time.Millisecond {
		t.Fatalf("budget did not shrink across the nested hop: server-2 %v, server-3 %v", rem2, rem3)
	}
	if rem3 <= 0 {
		t.Fatalf("server-3 remaining %v, want > 0", rem3)
	}
}

// TestUnbudgetedCallHasNoBudget pins mixed-version compatibility in the
// old-caller direction: a request with no deadline block must decode and
// execute exactly as before, with no budget in the handler context.
func TestUnbudgetedCallHasNoBudget(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	deployBudgetReport("Budget", f.Servers...)
	f.Settle(2)
	res, err := f.Servers[0].Stub("Budget").Invoke(context.Background(), "report", nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, rem := decodeReport(t, res.Body)
	if ok || rem != 0 {
		t.Fatalf("unbudgeted call saw budget (ok=%v rem=%v)", ok, rem)
	}
}

// TestBudgetExpiredBeforeDial: a zero budget fails fast with
// ErrBudgetExceeded — no attempt is issued at all.
func TestBudgetExpiredBeforeDial(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 1})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	ctx := rmi.WithBudget(context.Background(), f.Clock, 0)
	_, err := f.Servers[0].Stub("Echo").Invoke(ctx, "echo", nil)
	if !errors.Is(err, rmi.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

// TestLateResponseDiscarded: with 100ms of one-way latency and a 150ms
// budget, the response arrives after the deadline. The client-side gate
// must discard it — the caller sees budget exhaustion (or the server's own
// expired-on-arrival refusal if the request itself arrived late), never a
// late success.
func TestLateResponseDiscarded(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	deployEcho(f.Servers[1])
	f.Settle(2)
	f.Net.SetLatency(f.Servers[0].Endpoint.Addr(), f.Servers[1].Endpoint.Addr(), 100*time.Millisecond)
	stop := advancer(f)
	defer stop()

	ctx := rmi.WithBudget(context.Background(), f.Clock, 150*time.Millisecond)
	res, err := f.Servers[0].Stub("Echo").Invoke(ctx, "echo", []byte("late"))
	if err == nil {
		t.Fatalf("late response was delivered: %+v", res)
	}
	if !errors.Is(err, rmi.ErrBudgetExceeded) && !rmi.IsBusy(err) {
		t.Fatalf("want budget exhaustion or BUSY, got %v", err)
	}
}

// rawRequest builds a well-formed request body for Echo.echo, ready for a
// deadline block / trace envelope tail.
func rawRequest() *wire.Encoder {
	e := wire.NewEncoder(64)
	e.String("Echo")
	e.String("echo")
	e.String("")
	e.String("")
	e.Bytes2([]byte("hi"))
	return e
}

// rawCall drives a hand-built frame at a live server and returns the
// response status byte and error message.
func rawCall(t *testing.T, f *simtest.Fixture, body []byte) (status byte, msg string) {
	t.Helper()
	client := f.Net.Endpoint("10.9.9.9:1")
	resp, err := client.Call(context.Background(), f.Servers[0].Endpoint.Addr(),
		wire.Frame{Kind: wire.KindRequest, Body: body})
	if err != nil {
		t.Fatalf("raw call: %v", err)
	}
	d := wire.NewDecoder(resp.Body)
	status = d.Byte()
	_ = d.String() // servedBy
	msg = d.String()
	return status, msg
}

// TestExpiredOnArrivalRefusedAsBusy pins the wire contract: a request
// whose deadline block says 0ns remaining is refused with the BUSY status
// (4) before any application code runs.
func TestExpiredOnArrivalRefusedAsBusy(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 1})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	e := rawRequest()
	e.Byte(0xD9) // deadline magic
	e.Byte(0x01) // version 1
	e.Uint64(0)  // 0ns remaining: expired on arrival
	status, msg := rawCall(t, f, e.Bytes())
	if status != 4 {
		t.Fatalf("status = %d, want 4 (busy); msg=%q", status, msg)
	}
}

// TestBadDeadlineVersionRejected pins the forward-compat contract in the
// new-caller direction: an unknown deadline version is a malformed request
// (system error response), never a panic and never silent acceptance.
func TestBadDeadlineVersionRejected(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 1})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	e := rawRequest()
	e.Byte(0xD9)
	e.Byte(0x7F) // unknown version
	e.Uint64(uint64(time.Second))
	status, _ := rawCall(t, f, e.Bytes())
	if status == 0 {
		t.Fatalf("unknown deadline version accepted as OK")
	}
	if status == 4 {
		t.Fatalf("unknown deadline version misread as admission refusal")
	}
}

// TestBudgetWithTraceEnvelope: the deadline block and the trace envelope
// share the request tail (deadline first); both must survive a round trip
// together.
func TestBudgetWithTraceEnvelope(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	deployBudgetReport("Budget", f.Servers...)
	f.Settle(2)
	ring, ctr := traceUp(f, f.Servers...)

	ctx, root := ctr.StartRoot(context.Background(), "req", trace.KindInternal)
	ctx = rmi.WithBudget(ctx, f.Clock, time.Second)
	res, err := f.Servers[0].Stub("Budget").Invoke(ctx, "report", nil)
	if err != nil {
		t.Fatal(err)
	}
	root.Finish()
	ok, rem := decodeReport(t, res.Body)
	if !ok || rem <= 0 {
		t.Fatalf("budget lost when traced: ok=%v rem=%v", ok, rem)
	}
	var served bool
	for _, d := range ring.Snapshot() {
		if d.Name == "rmi.serve Budget.report" {
			served = true
		}
	}
	if !served {
		t.Fatal("trace envelope lost when budgeted")
	}
}
