package rmi

import (
	"context"
	"sync"
	"testing"
	"time"

	"wls/internal/metrics"
	"wls/internal/trace"
	"wls/internal/vclock"
)

// White-box regression tests for the pooled server-side Call. Pooling
// turned two dispatchQueued paths into use-after-release hazards:
//
//  1. a request abandoned at its deadline while still queued — the
//     transport goroutine recycles the Call, so the queued closure must
//     go inert instead of running the handler against a recycled object;
//  2. a Submit refusal — the closure will never run, so dispatchQueued
//     itself must hand the Call back or the pool leaks.
//
// Both are pinned against the release discipline itself: the test holds
// the *Call pointer and checks it was zeroed (releaseCall's reset) at the
// moment the contract says ownership returned to the pool. Reverting the
// claim check or dropping either releaseCall call fails these tests.

// manualQueue is an Admission that parks submitted tasks for the test to
// run (or not) at a chosen moment, like a backed-up execute queue.
type manualQueue struct {
	mu     sync.Mutex
	tasks  []func()
	refuse error
}

func (q *manualQueue) Submit(f func()) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.refuse != nil {
		return q.refuse
	}
	q.tasks = append(q.tasks, f)
	return nil
}

func (q *manualQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}

func (q *manualQueue) run(i int) {
	q.mu.Lock()
	f := q.tasks[i]
	q.mu.Unlock()
	f()
}

// callIsReset reports whether releaseCall's zeroing ran on c.
func callIsReset(c *Call) bool {
	return c.Service == "" && c.Method == "" && c.From == "" &&
		c.TxID == "" && c.ConvID == "" && c.Args == nil
}

func newDispatchRegistry() *Registry {
	reg := metrics.NewRegistry()
	return &Registry{
		reg:      reg,
		selfName: "s1",
		requests: reg.Counter("rmi.requests"),
		busy:     reg.Counter("rmi.busy"),
		services: make(map[string]*Service),
	}
}

func TestQueuedCallAbandonedAtDeadlineIsNotTouchedByWorker(t *testing.T) {
	r := newDispatchRegistry()
	q := &manualQueue{}

	ran := false
	m := MethodSpec{name: "m", Handler: func(ctx context.Context, c *Call) ([]byte, error) {
		ran = true
		return nil, nil
	}}

	call := callPool.Get().(*Call)
	call.Service = "S"
	call.Method = "m"
	call.Args = []byte("payload")

	budget := Budget{clock: vclock.System, deadline: vclock.System.Now().Add(10 * time.Millisecond)}
	fr := r.dispatchQueued(context.Background(), q, 7, "s1", call, trace.SpanContext{}, m, budget)
	if fr == nil {
		t.Fatal("no frame for abandoned request")
	}
	if got := r.busy.Value(); got != 1 {
		t.Fatalf("busy = %d, want 1 (deadline expired in queue)", got)
	}
	// Ownership went back to the pool when BUSY was sent: the object the
	// test still points at must have been reset by releaseCall.
	if !callIsReset(call) {
		t.Fatalf("abandoned Call not released: %+v", *call)
	}

	// The worker finally reaches the parked task — the very window where a
	// recycled Call would be observed by whatever request holds it now.
	if q.len() != 1 {
		t.Fatalf("queue holds %d tasks, want 1", q.len())
	}
	q.run(0)
	if ran {
		t.Fatal("handler ran for a request that was abandoned and recycled")
	}
}

func TestRefusedSubmitReleasesPooledCall(t *testing.T) {
	r := newDispatchRegistry()
	q := &manualQueue{refuse: context.DeadlineExceeded}

	call := callPool.Get().(*Call)
	call.Service = "S"
	call.Method = "m"
	call.Args = []byte("payload")

	fr := r.dispatchQueued(context.Background(), q, 9, "s1", call, trace.SpanContext{},
		MethodSpec{name: "m"}, Budget{})
	if fr == nil {
		t.Fatal("no frame for refused request")
	}
	if got := r.busy.Value(); got != 1 {
		t.Fatalf("busy = %d, want 1 (admission refused)", got)
	}
	// Submit's closure will never run, so dispatchQueued owned the release.
	if !callIsReset(call) {
		t.Fatalf("refused Call not released: %+v", *call)
	}
}

// TestClaimedCallRunsExactlyOnce covers the other side of the race: the
// worker wins the claim just before the deadline, so the handler's real
// outcome is returned and the Call is released by the worker, not twice.
func TestClaimedCallRunsExactlyOnce(t *testing.T) {
	r := newDispatchRegistry()
	q := &manualQueue{}

	runs := 0
	m := MethodSpec{name: "m", Handler: func(ctx context.Context, c *Call) ([]byte, error) {
		runs++
		if c.Service != "S" || string(c.Args) != "payload" {
			t.Errorf("handler saw corrupted Call: %+v", *c)
		}
		return []byte("ok"), nil
	}}

	call := callPool.Get().(*Call)
	call.Service = "S"
	call.Method = "m"
	call.Args = []byte("payload")

	done := make(chan struct{})
	go func() {
		defer close(done)
		budget := Budget{clock: vclock.System, deadline: vclock.System.Now().Add(5 * time.Second)}
		fr := r.dispatchQueued(context.Background(), q, 11, "s1", call, trace.SpanContext{}, m, budget)
		if fr == nil {
			t.Error("no frame for claimed request")
		}
	}()
	deadline := time.Now().Add(time.Second)
	for {
		if q.len() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("task never submitted")
		}
		time.Sleep(time.Millisecond)
	}
	q.run(0)
	<-done
	if runs != 1 {
		t.Fatalf("handler ran %d times, want 1", runs)
	}
	if !callIsReset(call) {
		t.Fatalf("executed Call not released: %+v", *call)
	}
	if got := r.busy.Value(); got != 0 {
		t.Fatalf("busy = %d, want 0", got)
	}
}
