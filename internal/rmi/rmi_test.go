package rmi_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wls/internal/cluster"
	"wls/internal/rmi"
	"wls/internal/simtest"
)

// deployEcho registers an echo service on the given servers; the response
// records which server handled the call.
func deployEcho(servers ...*simtest.Server) {
	for _, s := range servers {
		name := s.Name
		s.Registry.Register(&rmi.Service{
			Name: "Echo",
			Methods: map[string]rmi.MethodSpec{
				"echo": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
					return append([]byte(name+":"), c.Args...), nil
				}},
			},
		})
	}
}

func TestInvokeBasic(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)

	stub := f.Servers[0].Stub("Echo", rmi.WithPolicy(rmi.NewRoundRobin()))
	res, err := stub.Invoke(context.Background(), "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body[len(res.Body)-2:]) != "hi" {
		t.Fatalf("body = %q", res.Body)
	}
	if res.ServedBy == "" {
		t.Fatal("ServedBy empty")
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)

	stub := f.Servers[0].Stub("Echo", rmi.WithPolicy(rmi.NewRoundRobin()))
	counts := map[string]int{}
	for i := 0; i < 30; i++ {
		res, err := stub.Invoke(context.Background(), "echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.ServedBy]++
	}
	if len(counts) != 3 {
		t.Fatalf("round robin hit %d servers, want 3: %v", len(counts), counts)
	}
	for name, c := range counts {
		if c != 10 {
			t.Fatalf("uneven round robin: %s=%d (all: %v)", name, c, counts)
		}
	}
}

func TestLocalPreferenceAlwaysPicksLocal(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)

	stub := f.Servers[1].Stub("Echo") // default policy includes local preference
	for i := 0; i < 20; i++ {
		res, err := stub.Invoke(context.Background(), "echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.ServedBy != "server-2" {
			t.Fatalf("request left the local server: served by %s", res.ServedBy)
		}
	}
}

func TestLocalPreferenceFallsBackWhenNotDeployedLocally(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers[0], f.Servers[2]) // not on server-2
	f.Settle(2)

	stub := f.Servers[1].Stub("Echo")
	res, err := stub.Invoke(context.Background(), "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy == "server-2" {
		t.Fatal("service is not deployed on server-2")
	}
}

func TestTxAffinityPrefersEnlistedServers(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 4})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)

	// Client on server-1; transaction already involves server-3.
	stub := f.Servers[0].Stub("Echo", rmi.WithPolicy(rmi.TxAffinity{Next: rmi.NewRoundRobin()}))
	ctx := rmi.WithAffinity(context.Background(), "server-3")
	for i := 0; i < 12; i++ {
		res, err := stub.Invoke(ctx, "echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		// Either local (doesn't spread) or already-enlisted server-3.
		if res.ServedBy != "server-3" && res.ServedBy != "server-1" {
			t.Fatalf("transaction spread to %s", res.ServedBy)
		}
	}
}

func TestRandomPolicyCoversCluster(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)

	stub := f.Servers[0].Stub("Echo", rmi.WithPolicy(rmi.NewRandom(42)))
	seen := map[string]bool{}
	for i := 0; i < 60; i++ {
		res, err := stub.Invoke(context.Background(), "echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.ServedBy] = true
	}
	if len(seen) != 3 {
		t.Fatalf("random policy hit %d servers, want 3", len(seen))
	}
}

func TestWeightBasedSkew(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)

	stub := f.Servers[0].Stub("Echo", rmi.WithPolicy(
		rmi.NewWeightBased(7, map[string]int{"server-1": 9, "server-2": 1})))
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		res, err := stub.Invoke(context.Background(), "echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.ServedBy]++
	}
	if counts["server-1"] < 200 {
		t.Fatalf("weight 9:1 produced %v", counts)
	}
}

func TestFailoverOnCrashBeforeSend(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)

	// Crash server-1; its endpoint refuses traffic, which the stub treats
	// as request-never-sent and safely fails over, even though membership
	// has not yet noticed the failure.
	f.Crash("server-1")
	stub := f.Servers[1].Stub("Echo", rmi.WithPolicy(rmi.NewRoundRobin()))
	for i := 0; i < 10; i++ {
		res, err := stub.Invoke(context.Background(), "echo", nil)
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if res.ServedBy == "server-1" {
			t.Fatal("crashed server served a request")
		}
	}
}

func TestNonIdempotentDoesNotDoubleExecute(t *testing.T) {
	// E05 core property: a non-idempotent method must never execute twice
	// for a single logical invocation, even across failover attempts.
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	var executions atomic.Int64
	for _, s := range f.Servers {
		s.Registry.Register(&rmi.Service{
			Name: "Debit",
			Methods: map[string]rmi.MethodSpec{
				"debit": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
					executions.Add(1)
					return nil, nil
				}},
			},
		})
	}
	f.Settle(2)

	stub := f.Servers[0].Stub("Debit", rmi.WithPolicy(rmi.NewRoundRobin()))
	for i := 0; i < 20; i++ {
		if _, err := stub.Invoke(context.Background(), "debit", nil); err != nil {
			t.Fatal(err)
		}
	}
	if executions.Load() != 20 {
		t.Fatalf("20 invocations produced %d executions", executions.Load())
	}
}

func TestNoFailoverAfterSideEffects(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	var executed atomic.Int64
	for _, s := range f.Servers {
		s.Registry.Register(&rmi.Service{
			Name: "Flaky",
			Methods: map[string]rmi.MethodSpec{
				"op": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
					executed.Add(1)
					return nil, errors.New("disk exploded after the write")
				}},
			},
		})
	}
	f.Settle(2)

	stub := f.Servers[0].Stub("Flaky", rmi.WithPolicy(rmi.NewRoundRobin()))
	_, err := stub.Invoke(context.Background(), "op", nil)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, rmi.ErrNotRetryable) {
		t.Fatalf("want ErrNotRetryable, got %v", err)
	}
	if executed.Load() != 1 {
		t.Fatalf("non-idempotent op executed %d times, want exactly 1", executed.Load())
	}
}

func TestIdempotentRetriesAfterSystemError(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	var calls atomic.Int64
	for i, s := range f.Servers {
		fail := i == 0 // server-1 always fails
		s.Registry.Register(&rmi.Service{
			Name: "Lookup",
			Methods: map[string]rmi.MethodSpec{
				"get": {Idempotent: true, Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
					calls.Add(1)
					if fail {
						return nil, errors.New("transient failure")
					}
					return []byte("value"), nil
				}},
			},
		})
	}
	f.Settle(2)

	// Pin the first attempt to the failing server with round robin order.
	stub := f.Servers[0].Stub("Lookup",
		rmi.WithPolicy(rmi.LocalPreference{Next: rmi.NewRoundRobin()}),
		rmi.WithIdempotent("get"))
	res, err := stub.Invoke(context.Background(), "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "value" {
		t.Fatalf("body = %q", res.Body)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (fail on local, retry remote)", calls.Load())
	}
}

func TestAppErrorNeverFailsOver(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	var calls atomic.Int64
	for _, s := range f.Servers {
		s.Registry.Register(&rmi.Service{
			Name: "Biz",
			Methods: map[string]rmi.MethodSpec{
				"op": {Idempotent: true, Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
					calls.Add(1)
					return nil, &rmi.AppError{Msg: "insufficient funds"}
				}},
			},
		})
	}
	f.Settle(2)

	stub := f.Servers[0].Stub("Biz", rmi.WithIdempotent("op"))
	_, err := stub.Invoke(context.Background(), "op", nil)
	if !rmi.IsAppError(err) {
		t.Fatalf("want AppError, got %v", err)
	}
	if err.Error() != "insufficient funds" {
		t.Fatalf("message = %q", err.Error())
	}
	if calls.Load() != 1 {
		t.Fatalf("app error retried: calls=%d", calls.Load())
	}
}

func TestNoServers(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	stub := f.Servers[0].Stub("Ghost")
	_, err := stub.Invoke(context.Background(), "m", nil)
	if !errors.Is(err, rmi.ErrNoServers) {
		t.Fatalf("want ErrNoServers, got %v", err)
	}
}

func TestStaleViewFailsOverOnNoSuchService(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	// Undeploy on server-1 but invoke before the withdrawal propagates
	// everywhere: the stub must fail over on no-such-service.
	f.Servers[0].Registry.Unregister("Echo")

	// server-2's view may still list server-1 for a beat; force the stale
	// path by using a static order starting at server-1.
	stub := f.Servers[1].Stub("Echo", rmi.WithPolicy(pinFirst{"server-1"}))
	res, err := stub.Invoke(context.Background(), "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "server-2" {
		t.Fatalf("served by %s, want server-2", res.ServedBy)
	}
}

// pinFirst orders the named server first, for deterministic failover tests.
type pinFirst struct{ name string }

func (p pinFirst) Order(_ context.Context, _ string, cands []cluster.MemberInfo) []cluster.MemberInfo {
	out := make([]cluster.MemberInfo, 0, len(cands))
	for _, c := range cands {
		if c.Name == p.name {
			out = append(out, c)
		}
	}
	for _, c := range cands {
		if c.Name != p.name {
			out = append(out, c)
		}
	}
	return out
}

func TestUnknownMethodIsRetryableNotFatal(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	stub := f.Servers[0].Stub("Echo")
	_, err := stub.Invoke(context.Background(), "nope", nil)
	if err == nil {
		t.Fatal("want error for unknown method")
	}
}

func TestInvokeOnBypassesLoadBalancing(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	target := f.Servers[2]
	stub := f.Servers[0].Stub("Echo")
	res, err := stub.InvokeOn(context.Background(), target.Endpoint.Addr(), "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "server-3" {
		t.Fatalf("served by %s, want server-3", res.ServedBy)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)
	stub := f.Servers[0].Stub("Echo", rmi.WithPolicy(rmi.NewRoundRobin()))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := stub.Invoke(context.Background(), "echo", []byte(fmt.Sprint(i)))
			if err != nil {
				errs <- err
				return
			}
			want := fmt.Sprint(i)
			if got := string(res.Body[len(res.Body)-len(want):]); got != want {
				errs <- fmt.Errorf("cross-wired: got %q want %q", got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// --- External clients -----------------------------------------------------

func TestExternalClientBootstrapAndInvoke(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)

	clientEp := f.Net.Endpoint("client:0")
	ec := rmi.NewExternalClient(clientEp, f.Clock, time.Second, f.Servers[0].Endpoint.Addr())
	if err := ec.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(ec.Members()) != 3 {
		t.Fatalf("cached view has %d members", len(ec.Members()))
	}
	stub := ec.Stub("Echo", rmi.WithPolicy(rmi.NewRoundRobin()))
	seen := map[string]bool{}
	for i := 0; i < 9; i++ {
		res, err := stub.Invoke(context.Background(), "echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.ServedBy] = true
	}
	if len(seen) != 3 {
		t.Fatalf("external client balanced across %d servers, want 3", len(seen))
	}
}

func TestExternalClientSurvivesBootstrapCrash(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	deployEcho(f.Servers...)
	f.Settle(2)

	clientEp := f.Net.Endpoint("client:0")
	ec := rmi.NewExternalClient(clientEp, f.Clock, time.Second, f.Servers[0].Endpoint.Addr())
	if err := ec.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The bootstrap server dies; refresh must succeed via cached members.
	f.Crash("server-1")
	if err := ec.Refresh(context.Background()); err != nil {
		t.Fatalf("refresh via cached members: %v", err)
	}
	stub := ec.Stub("Echo", rmi.WithPolicy(rmi.NewRoundRobin()))
	for i := 0; i < 6; i++ {
		if _, err := stub.Invoke(context.Background(), "echo", nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExternalClientPeriodicRefresh(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	deployEcho(f.Servers[0])
	f.Settle(2)

	clientEp := f.Net.Endpoint("client:0")
	ec := rmi.NewExternalClient(clientEp, f.Clock, 500*time.Millisecond, f.Servers[0].Endpoint.Addr())
	if err := ec.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	ec.Start()
	defer ec.Stop()

	if len(ec.Candidates("Echo")) != 1 {
		t.Fatalf("candidates = %d, want 1", len(ec.Candidates("Echo")))
	}
	// Deploy on server-2; after a refresh interval the client sees it.
	deployEcho(f.Servers[1])
	f.Settle(8) // > refresh interval
	if len(ec.Candidates("Echo")) != 2 {
		t.Fatalf("after refresh, candidates = %d, want 2", len(ec.Candidates("Echo")))
	}
}

func TestBuiltinViewServiceDeployedEverywhere(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	for _, s := range f.Servers {
		if !s.Registry.Deployed(rmi.ViewServiceName) {
			t.Fatalf("%s missing builtin view service", s.Name)
		}
	}
}
