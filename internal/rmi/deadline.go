package rmi

import (
	"context"
	"errors"
	"fmt"
	"time"

	"wls/internal/vclock"
	"wls/internal/wire"
)

// This file implements deadline/budget propagation: a caller attaches a
// time budget to its context, every RMI hop ships the *remaining* budget
// across the wire, and the receiving server re-derives a budget against its
// own clock. Only durations cross the wire — the cluster has no global
// clock to compare absolute timestamps against (and the virtual clock makes
// wall-clock context deadlines meaningless in simulation), so the hop cost
// is simply absorbed by the shrinking remainder, mirroring how RMI/IIOP
// request timeouts propagated between WebLogic servers.

// ErrBudgetExceeded reports that a request's time budget ran out on the
// client side: either before an attempt could be issued or while waiting
// for a response. It wraps nothing retryable — the budget is gone.
var ErrBudgetExceeded = errors.New("rmi: request budget exhausted")

// Budget is a request's time allowance, pinned to the clock it was minted
// on. The zero Budget is "no budget" (infinite).
type Budget struct {
	clock    vclock.Clock
	deadline time.Time
}

// Valid reports whether a budget is actually set.
func (b Budget) Valid() bool { return b.clock != nil }

// Deadline returns the absolute deadline on the budget's own clock.
func (b Budget) Deadline() time.Time { return b.deadline }

// Remaining returns the unspent budget (negative once expired).
func (b Budget) Remaining() time.Duration {
	if b.clock == nil {
		return 0
	}
	return b.deadline.Sub(b.clock.Now())
}

// Expired reports whether the budget has run out.
func (b Budget) Expired() bool { return b.clock != nil && b.Remaining() <= 0 }

type budgetKey struct{}

// WithBudget attaches a time budget of d to the context, measured on the
// given clock. Stubs ship the remaining budget on every hop; servers refuse
// expired-on-arrival work and hand their services a context carrying the
// re-derived budget, so nested EJB/tx/JMS calls inherit the shrinkage.
func WithBudget(ctx context.Context, clock vclock.Clock, d time.Duration) context.Context {
	return context.WithValue(ctx, budgetKey{}, Budget{clock: clock, deadline: clock.Now().Add(d)})
}

// BudgetFrom extracts the budget attached to ctx, if any.
func BudgetFrom(ctx context.Context) (Budget, bool) {
	b, ok := ctx.Value(budgetKey{}).(Budget)
	return b, ok
}

// ---------------------------------------------------------------------------
// Wire encoding.

// The deadline block is appended AFTER the fixed RMI request fields and
// BEFORE the optional trace envelope (the trace envelope's parser insists
// on consuming the tail, so it must come last). The decoder dispatches on
// the magic byte: an old request has neither block, a traced-but-unbudgeted
// request starts directly with the trace magic, and a budgeted request
// starts with the deadline magic. Versions other than 1 are rejected the
// same way the trace envelope rejects them: as malformed, never a panic.
const (
	deadlineMagic   byte = 0xD9
	deadlineVersion byte = 1
)

// ErrBadDeadline reports a corrupt deadline block.
var ErrBadDeadline = errors.New("rmi: malformed deadline block")

// appendDeadline appends the remaining budget (clamped to ≥0) to a request
// being encoded.
func appendDeadline(e *wire.Encoder, remaining time.Duration) {
	if remaining < 0 {
		remaining = 0
	}
	e.Byte(deadlineMagic)
	e.Byte(deadlineVersion)
	e.Uint64(uint64(remaining))
}

// parseDeadline reads the optional deadline block. Absent block (next byte
// is not the deadline magic, or nothing remains) returns ok=false with no
// error, leaving the decoder positioned for the trace envelope.
func parseDeadline(d *wire.Decoder) (remaining time.Duration, ok bool, err error) {
	if d.Err() != nil {
		return 0, false, d.Err()
	}
	magic, have := d.Peek()
	if !have || magic != deadlineMagic {
		return 0, false, nil
	}
	d.Byte() // consume magic
	version := d.Byte()
	if d.Err() != nil || version != deadlineVersion {
		return 0, false, fmt.Errorf("%w: unsupported version %d", ErrBadDeadline, version) //wls:nolint hotalloc -- malformed-deadline error path, never taken on healthy traffic
	}
	nanos := d.Uint64()
	if d.Err() != nil {
		return 0, false, fmt.Errorf("%w: truncated", ErrBadDeadline) //wls:nolint hotalloc -- malformed-deadline error path, never taken on healthy traffic
	}
	return time.Duration(nanos), true, nil
}
