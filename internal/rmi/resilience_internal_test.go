package rmi

import (
	"testing"
	"time"

	"wls/internal/metrics"
	"wls/internal/vclock"
)

// White-box coverage of the resilience primitives: the breaker state
// machine, the retry token bucket and the deterministic backoff jitter.

func newTestResilience(cfg ResilienceConfig) (*Resilience, *vclock.Virtual, *metrics.Registry) {
	clk := vclock.NewVirtualAtZero()
	reg := metrics.NewRegistry()
	return NewResilience(cfg, clk, reg), clk, reg
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := ResilienceConfig{BreakerThreshold: 3, BreakerCooldown: 100 * time.Millisecond}
	r, clk, reg := newTestResilience(cfg)
	const srv = "server-1"

	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		if !r.Allow(srv) {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		r.recordFailure(srv)
	}
	if st := r.State(srv); st != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", st)
	}

	// Threshold failure opens it; open refuses until the cooldown elapses.
	r.recordFailure(srv)
	if st := r.State(srv); st != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", st)
	}
	if got := reg.Counter("rmi.breaker.opened").Value(); got != 1 {
		t.Fatalf("breaker.opened = %d, want 1", got)
	}
	if r.Allow(srv) {
		t.Fatal("open breaker admitted before cooldown")
	}

	// Cooldown promotes to half-open with exactly one probe slot.
	clk.Advance(cfg.BreakerCooldown)
	if !r.Allow(srv) {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if st := r.State(srv); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	r.markAttempt(srv)
	if r.Allow(srv) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Failed probe: back to open, cooldown restarts from the probe failure.
	r.recordFailure(srv)
	if st := r.State(srv); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	clk.Advance(cfg.BreakerCooldown / 2)
	if r.Allow(srv) {
		t.Fatal("re-opened breaker admitted before a fresh cooldown")
	}

	// Successful probe re-closes and is counted.
	clk.Advance(cfg.BreakerCooldown)
	if !r.Allow(srv) {
		t.Fatal("breaker refused the second probe")
	}
	r.markAttempt(srv)
	r.recordSuccess(srv)
	if st := r.State(srv); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if got := reg.Counter("rmi.breaker.closed").Value(); got != 1 {
		t.Fatalf("breaker.closed = %d, want 1", got)
	}
}

// TestBreakerOpenDoesNotRefreshOnFailure pins the anti-livelock rule:
// failures recorded while already open (forced last-resort probes under a
// total outage) must not postpone the half-open transition.
func TestBreakerOpenDoesNotRefreshOnFailure(t *testing.T) {
	cfg := ResilienceConfig{BreakerThreshold: 1, BreakerCooldown: 100 * time.Millisecond}
	r, clk, _ := newTestResilience(cfg)
	const srv = "server-1"
	r.recordFailure(srv)
	if st := r.State(srv); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	clk.Advance(90 * time.Millisecond)
	r.recordFailure(srv) // while open: must not restart the cooldown
	clk.Advance(10 * time.Millisecond)
	if !r.Allow(srv) {
		t.Fatal("failure while open postponed the half-open transition")
	}
}

func TestRetryTokenBucket(t *testing.T) {
	r, _, reg := newTestResilience(ResilienceConfig{RetryBudget: 2, RetryRatio: 0.5})
	// Bucket starts full.
	for i := 0; i < 2; i++ {
		if !r.SpendRetry() {
			t.Fatalf("spend %d refused with tokens banked", i)
		}
	}
	if r.SpendRetry() {
		t.Fatal("empty bucket granted a retry")
	}
	if got := reg.Counter("rmi.retry.denied").Value(); got != 1 {
		t.Fatalf("retry.denied = %d, want 1", got)
	}
	// Successes earn fractional credit: two at ratio 0.5 bank one retry.
	r.recordSuccess("server-1")
	if r.SpendRetry() {
		t.Fatal("half a token granted a retry")
	}
	r.recordSuccess("server-1")
	if !r.SpendRetry() {
		t.Fatal("earned token refused")
	}
	if got := reg.Counter("rmi.retries").Value(); got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := ResilienceConfig{Seed: 42, BackoffBase: 5 * time.Millisecond, BackoffMax: 250 * time.Millisecond}
	a, _, _ := newTestResilience(cfg)
	b, _, _ := newTestResilience(cfg)
	other, _, _ := newTestResilience(ResilienceConfig{Seed: 43, BackoffBase: 5 * time.Millisecond, BackoffMax: 250 * time.Millisecond})

	var seqA, seqB, seqO []time.Duration
	for n := 1; n <= 12; n++ {
		seqA = append(seqA, a.backoff(n))
		seqB = append(seqB, b.backoff(n))
		seqO = append(seqO, other.backoff(n))
	}
	differs := false
	for n := 1; n <= 12; n++ {
		da, db := seqA[n-1], seqB[n-1]
		if da != db {
			t.Fatalf("backoff(%d) not deterministic: %v vs %v", n, da, db)
		}
		if da != seqO[n-1] {
			differs = true
		}
		// Uncapped growth is base<<(n-1); jitter scales into [0.5, 1.0).
		exp := cfg.BackoffBase << (n - 1)
		if exp > cfg.BackoffMax || exp <= 0 {
			exp = cfg.BackoffMax
		}
		if da < exp/2 || da >= exp {
			t.Fatalf("backoff(%d) = %v outside [%v, %v)", n, da, exp/2, exp)
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}
