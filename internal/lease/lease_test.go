package lease_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"wls/internal/lease"
	"wls/internal/simtest"
	"wls/internal/store"
	"wls/internal/vclock"
)

func newManager(clk vclock.Clock, ttl time.Duration) (*lease.Manager, *store.Store) {
	tbl := store.New("leasedb", clk)
	m := lease.NewManager(clk, lease.AlwaysLeader(), tbl, ttl)
	return m, tbl
}

func TestAcquireFreeLease(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, time.Second)
	g, err := m.Acquire("queue-1", "server-1", lease.Pull)
	if err != nil {
		t.Fatal(err)
	}
	if g.Owner != "server-1" || g.Epoch != 1 {
		t.Fatalf("grant = %+v", g)
	}
	owner, epoch := m.OwnerOf("queue-1")
	if owner != "server-1" || epoch != 1 {
		t.Fatalf("owner = %s epoch = %d", owner, epoch)
	}
}

func TestAcquireHeldLeaseFails(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, time.Second)
	m.Acquire("q", "server-1", lease.Pull)
	_, err := m.Acquire("q", "server-2", lease.Pull)
	if !errors.Is(err, lease.ErrHeld) {
		t.Fatalf("want ErrHeld, got %v", err)
	}
}

func TestExpiredLeaseGrantableWithNewEpoch(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, time.Second)
	g1, _ := m.Acquire("q", "server-1", lease.Pull)
	clk.Advance(2 * time.Second)
	g2, err := m.Acquire("q", "server-2", lease.Pull)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Epoch <= g1.Epoch {
		t.Fatalf("epoch must increase on ownership change: %d -> %d", g1.Epoch, g2.Epoch)
	}
}

func TestRenewExtendsWithoutEpochChange(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, time.Second)
	g1, _ := m.Acquire("q", "server-1", lease.Pull)
	clk.Advance(500 * time.Millisecond)
	g2, err := m.Renew("q", "server-1")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Epoch != g1.Epoch {
		t.Fatal("renew must not change the epoch")
	}
	if !g2.Expires.After(g1.Expires) {
		t.Fatal("renew must extend expiry")
	}
}

func TestRenewByNonOwnerFails(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, time.Second)
	m.Acquire("q", "server-1", lease.Pull)
	if _, err := m.Renew("q", "server-2"); !errors.Is(err, lease.ErrNotHeld) {
		t.Fatalf("want ErrNotHeld, got %v", err)
	}
}

func TestRenewAfterExpiryFails(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, time.Second)
	m.Acquire("q", "server-1", lease.Pull)
	clk.Advance(3 * time.Second)
	if _, err := m.Renew("q", "server-1"); !errors.Is(err, lease.ErrNotHeld) {
		t.Fatalf("want ErrNotHeld after expiry, got %v", err)
	}
}

func TestReleaseFreesImmediately(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, time.Second)
	m.Acquire("q", "server-1", lease.Pull)
	if err := m.Release("q", "server-1"); err != nil {
		t.Fatal(err)
	}
	if owner, _ := m.OwnerOf("q"); owner != "" {
		t.Fatalf("owner after release = %s", owner)
	}
	if _, err := m.Acquire("q", "server-2", lease.Pull); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestNonLeaderRefuses(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	tbl := store.New("leasedb", clk)
	m := lease.NewManager(clk, follower{}, tbl, time.Second)
	if _, err := m.Acquire("q", "s", lease.Pull); !errors.Is(err, lease.ErrNotLeader) {
		t.Fatalf("want ErrNotLeader, got %v", err)
	}
}

type follower struct{}

func (follower) IsLeader() bool { return false }
func (follower) Term() uint64   { return 0 }

func TestPushLeaseExpiryNotifies(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, time.Second)
	var expired atomic.Value
	m.OnExpired(func(g lease.Grant) { expired.Store(g) })
	m.Start()
	defer m.Stop()

	m.Acquire("jms-server", "server-1", lease.Push)
	clk.Advance(3 * time.Second) // no renewal → expire + sweep

	g, ok := expired.Load().(lease.Grant)
	if !ok {
		t.Fatal("no expiry notification for push lease")
	}
	if g.Service != "jms-server" || g.Owner != "server-1" {
		t.Fatalf("grant = %+v", g)
	}
	// The lease is revoked: free for re-grant with a higher epoch.
	owner, _ := m.OwnerOf("jms-server")
	if owner != "" {
		t.Fatalf("owner after revoke = %s", owner)
	}
}

func TestPullLeaseExpiryDoesNotNotify(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, time.Second)
	var fired atomic.Int64
	m.OnExpired(func(lease.Grant) { fired.Add(1) })
	m.Start()
	defer m.Stop()
	m.Acquire("profile-u1", "server-1", lease.Pull)
	clk.Advance(5 * time.Second)
	if fired.Load() != 0 {
		t.Fatal("pull lease expiry must not notify")
	}
}

func TestCreationOnlyOnceAcrossManagers(t *testing.T) {
	// Two manager replicas sharing one persistent table: both believing
	// they lead (the worst case during a leadership handoff) cannot both
	// grant the same service — the table's version check serializes them.
	clk := vclock.NewVirtualAtZero()
	tbl := store.New("leasedb", clk)
	m1 := lease.NewManager(clk, lease.AlwaysLeader(), tbl, time.Second)
	m2 := lease.NewManager(clk, lease.AlwaysLeader(), tbl, time.Second)

	_, err1 := m1.Acquire("q", "server-1", lease.Pull)
	_, err2 := m2.Acquire("q", "server-2", lease.Pull)
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("exactly one acquire must win: err1=%v err2=%v", err1, err2)
	}
}

func TestManagerFailoverPreservesTable(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	tbl := store.New("leasedb", clk)
	m1 := lease.NewManager(clk, lease.AlwaysLeader(), tbl, time.Second)
	g, _ := m1.Acquire("q", "server-1", lease.Pull)

	// New manager replica (new leader) sees the same grant.
	m2 := lease.NewManager(clk, lease.AlwaysLeader(), tbl, time.Second)
	owner, epoch := m2.OwnerOf("q")
	if owner != "server-1" || epoch != g.Epoch {
		t.Fatalf("new manager lost the table: %s/%d", owner, epoch)
	}
	// And the holder can renew against the new manager.
	if _, err := m2.Renew("q", "server-1"); err != nil {
		t.Fatal(err)
	}
}

// --- Holder over RMI --------------------------------------------------------

func TestHolderAcquireRenewLoop(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	tbl := store.New("leasedb", f.Clock)
	mgr := lease.NewManager(f.Clock, lease.AlwaysLeader(), tbl, time.Second)
	f.Servers[0].Registry.Register(mgr.RMIService())
	f.Settle(2)

	h := lease.NewHolder(f.Clock, f.Servers[1].Endpoint, "q", "server-2", lease.Pull,
		f.Servers[0].Endpoint.Addr())
	if err := h.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !h.Held() || h.Epoch() != 1 {
		t.Fatalf("held=%v epoch=%d", h.Held(), h.Epoch())
	}
	// Auto-renew keeps it held far past the original TTL.
	for i := 0; i < 10; i++ {
		f.VClock.Advance(400 * time.Millisecond)
		time.Sleep(2 * time.Millisecond)
	}
	if !h.Held() {
		t.Fatal("auto-renew failed to keep the lease")
	}
	if err := h.Release(context.Background()); err != nil {
		t.Fatal(err)
	}
	if owner, _ := mgr.OwnerOf("q"); owner != "" {
		t.Fatal("release did not free the lease")
	}
}

func TestHolderLosesLeaseWhenManagerUnreachable(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	tbl := store.New("leasedb", f.Clock)
	mgr := lease.NewManager(f.Clock, lease.AlwaysLeader(), tbl, time.Second)
	f.Servers[0].Registry.Register(mgr.RMIService())
	f.Settle(2)

	h := lease.NewHolder(f.Clock, f.Servers[1].Endpoint, "q", "server-2", lease.Pull,
		f.Servers[0].Endpoint.Addr())
	if err := h.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var lost atomic.Bool
	h.OnLost(func() { lost.Store(true) })

	f.Crash("server-1") // lease manager gone
	for i := 0; i < 20 && !lost.Load(); i++ {
		f.VClock.Advance(400 * time.Millisecond)
		time.Sleep(2 * time.Millisecond)
	}
	if !lost.Load() {
		t.Fatal("holder never noticed lease loss")
	}
	if h.Held() {
		t.Fatal("holder still claims the lease")
	}
}

func TestHolderProbesForLeader(t *testing.T) {
	// Manager replicas on two servers; only server-2's replica leads.
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	tbl := store.New("leasedb", f.Clock)
	mFollower := lease.NewManager(f.Clock, follower{}, tbl, time.Second)
	mLeader := lease.NewManager(f.Clock, lease.AlwaysLeader(), tbl, time.Second)
	f.Servers[0].Registry.Register(mFollower.RMIService())
	f.Servers[1].Registry.Register(mLeader.RMIService())
	f.Settle(2)

	h := lease.NewHolder(f.Clock, f.Servers[2].Endpoint, "q", "server-3", lease.Pull,
		f.Servers[0].Endpoint.Addr(), f.Servers[1].Endpoint.Addr())
	if err := h.Acquire(context.Background()); err != nil {
		t.Fatalf("holder failed to find the leader: %v", err)
	}
	if owner, _ := mLeader.OwnerOf("q"); owner != "server-3" {
		t.Fatalf("owner = %s", owner)
	}
}

func TestTwoHoldersOneWins(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 3})
	defer f.Stop()
	tbl := store.New("leasedb", f.Clock)
	mgr := lease.NewManager(f.Clock, lease.AlwaysLeader(), tbl, time.Second)
	f.Servers[0].Registry.Register(mgr.RMIService())
	f.Settle(2)

	h1 := lease.NewHolder(f.Clock, f.Servers[1].Endpoint, "q", "server-2", lease.Pull, f.Servers[0].Endpoint.Addr())
	h2 := lease.NewHolder(f.Clock, f.Servers[2].Endpoint, "q", "server-3", lease.Pull, f.Servers[0].Endpoint.Addr())
	err1 := h1.Acquire(context.Background())
	err2 := h2.Acquire(context.Background())
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("exactly one holder must win: %v / %v", err1, err2)
	}
}
