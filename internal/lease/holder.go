package lease

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"wls/internal/rmi"
	"wls/internal/vclock"
	"wls/internal/wire"
)

// Holder is the lease-owner side of the handshake: it acquires a lease,
// renews it at half-life, and reports loss. A service built on a Holder
// must arrange that all of its operations complete within the lease period
// — that is the grace-period contract that prevents split-brain (§3.4).
type Holder struct {
	clock    vclock.Clock
	node     rmi.Node
	managers []string // lease-manager addresses (leader discovered by probing)
	service  string
	owner    string
	kind     Kind

	mu      sync.Mutex
	grant   Grant
	held    bool
	renewT  vclock.Timer
	onLost  func()
	stopped bool
}

// NewHolder creates a holder for service, identifying as owner, speaking to
// the given lease-manager addresses through node.
func NewHolder(clock vclock.Clock, node rmi.Node, service, owner string, kind Kind, managers ...string) *Holder {
	return &Holder{
		clock:    clock,
		node:     node,
		managers: managers,
		service:  service,
		owner:    owner,
		kind:     kind,
	}
}

// OnLost registers the callback fired when the lease cannot be renewed.
// The service must stop operating immediately when it fires.
func (h *Holder) OnLost(fn func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.onLost = fn
}

// Grant returns the current grant (zero if not held).
func (h *Holder) Grant() Grant {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.grant
}

// Held reports whether the lease is currently held and unexpired.
func (h *Holder) Held() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.held && h.clock.Now().Before(h.grant.Expires)
}

// Epoch returns the fencing epoch of the current grant.
func (h *Holder) Epoch() uint64 { return h.Grant().Epoch }

// Acquire obtains the lease (probing managers for the leader) and starts
// auto-renewal.
func (h *Holder) Acquire(ctx context.Context) error {
	e := wire.NewEncoder(64)
	e.String(h.service)
	e.String(h.owner)
	e.Byte(byte(h.kind))
	body, err := h.callLeader(ctx, "acquire", e.Bytes())
	if err != nil {
		return err
	}
	g, err := DecodeGrant(body)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.grant = g
	h.held = true
	h.stopped = false
	h.mu.Unlock()
	h.scheduleRenew()
	return nil
}

// Release gives the lease up voluntarily and stops renewal.
func (h *Holder) Release(ctx context.Context) error {
	h.stopRenew()
	h.mu.Lock()
	wasHeld := h.held
	h.held = false
	h.mu.Unlock()
	if !wasHeld {
		return nil
	}
	e := wire.NewEncoder(64)
	e.String(h.service)
	e.String(h.owner)
	_, err := h.callLeader(ctx, "release", e.Bytes())
	return err
}

// Stop halts renewal without releasing (used when the process is dying; the
// lease will expire on its own).
func (h *Holder) Stop() { h.stopRenew() }

func (h *Holder) stopRenew() {
	h.mu.Lock()
	h.stopped = true
	t := h.renewT
	h.renewT = nil
	h.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}

func (h *Holder) scheduleRenew() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	half := h.grant.Expires.Sub(h.clock.Now()) / 2
	if half <= 0 {
		half = time.Millisecond
	}
	// Renewal RPCs run off the timer goroutine so a slow or frozen network
	// path never stalls the clock driving everyone else.
	h.renewT = h.clock.AfterFunc(half, func() { go h.renewOnce() })
	h.mu.Unlock()
}

func (h *Holder) renewOnce() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	deadline := h.grant.Expires
	h.mu.Unlock()

	e := wire.NewEncoder(64)
	e.String(h.service)
	e.String(h.owner)
	// The RPC timeout is real time (it bounds the network exchange), while
	// the lease deadline lives on the holder's clock — do not mix them.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	body, err := h.callLeader(ctx, "renew", e.Bytes())
	cancel()
	if err == nil {
		if g, derr := DecodeGrant(body); derr == nil {
			h.mu.Lock()
			h.grant = g
			h.mu.Unlock()
			h.scheduleRenew()
			return
		}
	}
	// Renewal failed. If the lease has genuinely expired (or ownership
	// moved), report loss; otherwise retry shortly — transient manager
	// failover must not kill a healthy owner.
	if errors.Is(err, ErrNotHeldApp) || h.clock.Now().After(deadline) {
		h.loseLease()
		return
	}
	h.mu.Lock()
	if !h.stopped {
		h.renewT = h.clock.AfterFunc(deadline.Sub(h.clock.Now())/4+time.Millisecond, func() { go h.renewOnce() })
	}
	h.mu.Unlock()
}

func (h *Holder) loseLease() {
	h.mu.Lock()
	h.held = false
	h.stopped = true
	fn := h.onLost
	h.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// ErrNotHeldApp matches the application-error text a manager returns when
// the caller no longer holds the lease.
var ErrNotHeldApp = errors.New("lease: ownership lost")

// callLeader invokes the lease service, probing every manager address and
// following ErrNotLeader rejections.
func (h *Holder) callLeader(ctx context.Context, method string, args []byte) ([]byte, error) {
	var lastErr error
	for _, addr := range h.managers {
		stub := rmi.NewStub(ServiceName, h.node, rmi.StaticView(addr))
		res, err := stub.Invoke(ctx, method, args)
		if err == nil {
			return res.Body, nil
		}
		lastErr = err
		if rmi.IsAppError(err) {
			msg := err.Error()
			switch {
			case strings.Contains(msg, "not the lease manager leader"):
				continue // probe the next manager
			case strings.Contains(msg, "does not hold"), strings.Contains(msg, "expired"):
				return nil, ErrNotHeldApp
			default:
				return nil, err
			}
		}
	}
	if lastErr == nil {
		lastErr = errors.New("lease: no manager addresses configured")
	}
	return nil, lastErr
}

// QueryOwner asks any reachable manager who currently owns a service lease.
// Unlike grants, ownership queries are served by followers too (their view
// of the shared table is as fresh as the leader's).
func QueryOwner(ctx context.Context, node rmi.Node, service string, managers ...string) (owner string, epoch uint64, err error) {
	e := wire.NewEncoder(32)
	e.String(service)
	var lastErr error
	for _, addr := range managers {
		stub := rmi.NewStub(ServiceName, node, rmi.StaticView(addr))
		res, ierr := stub.Invoke(ctx, "owner", e.Bytes())
		if ierr != nil {
			lastErr = ierr
			continue
		}
		d := wire.NewDecoder(res.Body)
		owner, epoch = d.String(), d.Uint64()
		return owner, epoch, d.Err()
	}
	if lastErr == nil {
		lastErr = errors.New("lease: no manager addresses configured")
	}
	return "", 0, lastErr
}
