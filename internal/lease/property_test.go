package lease_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"wls/internal/lease"
	"wls/internal/store"
	"wls/internal/vclock"
)

// TestLeaseEpochMonotonicProperty: under any random sequence of acquires,
// renews, releases, and expiries by two competing owners, (a) the epoch
// never regresses, (b) renewals never change the epoch, and (c) a change
// of ownership always bumps it — the fencing invariant every singleton
// relies on.
func TestLeaseEpochMonotonicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := vclock.NewVirtualAtZero()
		tbl := store.New("leasedb", clk)
		m := lease.NewManager(clk, lease.AlwaysLeader(), tbl, time.Second)

		owners := []string{"s1", "s2"}
		var lastEpoch uint64
		lastOwner := ""
		for step := 0; step < 60; step++ {
			who := owners[rng.Intn(2)]
			switch rng.Intn(4) {
			case 0:
				if g, err := m.Acquire("svc", who, lease.Pull); err == nil {
					if g.Epoch < lastEpoch {
						return false // regression
					}
					if lastOwner != "" && lastOwner != who && g.Epoch == lastEpoch {
						return false // ownership moved without a new epoch
					}
					lastEpoch, lastOwner = g.Epoch, who
				}
			case 1:
				if g, err := m.Renew("svc", who); err == nil {
					if g.Epoch != lastEpoch {
						return false // renew must not change the epoch
					}
				}
			case 2:
				if m.Release("svc", who) == nil && who == lastOwner {
					lastOwner = ""
				}
			case 3:
				clk.Advance(time.Duration(rng.Intn(1500)) * time.Millisecond)
				if o, _ := m.OwnerOf("svc"); o == "" {
					lastOwner = ""
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
