package lease_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wls/internal/lease"
	"wls/internal/vclock"
)

// TestManagerStartStopSweepRace interleaves Start/Stop/OnExpired with a
// concurrently advancing clock (which fires sweep callbacks on the
// advancing goroutine). Under -race it pins the manager's lifecycle
// synchronization: listeners, the sweep timer and the running flag are
// all touched from both goroutines.
func TestManagerStartStopSweepRace(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, 100*time.Millisecond)
	swept := make(chan struct{}, 100)
	m.OnExpired(func(lease.Grant) {
		select {
		case swept <- struct{}{}:
		default:
		}
	})
	m.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(25 * time.Millisecond)
			}
		}
	}()
	for i := 0; i < 20; i++ {
		// Re-arm an expiring push lease, then wait until a sweep has just
		// notified on the advancing goroutine — Stop below races that
		// callback's re-arm, OnExpired races its listener snapshot.
		if _, err := m.Acquire("svc", "a", lease.Push); err != nil {
			t.Fatal(err)
		}
		<-swept
		m.OnExpired(func(lease.Grant) {})
		m.Stop()
		m.Start()
	}
	close(stop)
	wg.Wait()
	m.Stop()
}

// TestNoSweepAfterStop pins the semantic half of the lifecycle fix: once
// Stop returns, no sweep may run again — in particular an in-flight
// AfterFunc callback must not re-arm the sweeper — so a lease expiring
// after Stop produces no notifications.
func TestNoSweepAfterStop(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, 100*time.Millisecond)
	var fired atomic.Int64
	m.OnExpired(func(lease.Grant) { fired.Add(1) })

	if _, err := m.Acquire("svc", "a", lease.Push); err != nil {
		t.Fatal(err)
	}
	m.Start()
	clk.Advance(350 * time.Millisecond)
	if fired.Load() == 0 {
		t.Fatalf("no expiry notification while running")
	}

	m.Stop()
	m.Stop() // idempotent
	base := fired.Load()
	if _, err := m.Acquire("svc", "a", lease.Push); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if got := fired.Load(); got != base {
		t.Fatalf("sweeper survived Stop: %d extra notifications", got-base)
	}
}

// TestManagerRestartResumesSweeps checks that Stop is a pause, not a
// poison pill: a restarted manager sweeps again under a fresh generation.
func TestManagerRestartResumesSweeps(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m, _ := newManager(clk, 100*time.Millisecond)
	var fired atomic.Int64
	m.OnExpired(func(lease.Grant) { fired.Add(1) })

	m.Start()
	m.Start() // no-op on a running manager
	m.Stop()

	if _, err := m.Acquire("svc", "a", lease.Push); err != nil {
		t.Fatal(err)
	}
	m.Start()
	clk.Advance(time.Second)
	if fired.Load() == 0 {
		t.Fatalf("restarted manager never swept the expired lease")
	}
	m.Stop()
}
