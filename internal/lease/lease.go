// Package lease implements the highly-available lease manager of §3.4: the
// consensus-elected management leader "grants leases to own services", and
// "lease owners must regularly perform a handshake with the lease manager
// to renew their leases". The lease period is the grace period of the
// split-brain argument: a holder must ensure all operations for its service
// complete within it.
//
// Faithful details:
//
//   - The lease table is persistent ("so it survives failures, in order to
//     ensure that creation of a service occurs only once"): it lives in a
//     shared backend store, so a newly elected lease manager sees every
//     outstanding grant.
//   - Every grant carries an epoch that increments on each change of
//     ownership — the service-level fencing token. A deposed owner's
//     writes can be recognized by their stale epoch.
//   - Push leases (continuous singletons): the manager sweeps for expired
//     leases and notifies listeners, which re-place the service.
//   - Pull leases (on-demand singletons): expired leases are simply
//     grantable to the next caller; nobody is notified.
//   - Competing lease managers (a deposed leader that has not yet noticed)
//     are serialized by optimistic version checks on the lease table rows,
//     so at most one grant per row version can succeed.
package lease

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"wls/internal/rmi"
	"wls/internal/store"
	"wls/internal/vclock"
	"wls/internal/wire"
)

// ServiceName is the RMI service the lease manager exposes.
const ServiceName = "wls.lease"

// Kind distinguishes push from pull leases.
type Kind byte

// Lease kinds.
const (
	// Pull leases are for on-demand singletons: expiry makes the lease
	// grantable but triggers no action.
	Pull Kind = iota
	// Push leases are for continuous singletons: the manager notifies
	// expiry listeners so the service is proactively re-placed.
	Push
)

// Table is the store table holding the persistent lease rows.
const Table = "wls.leases"

// Errors.
var (
	// ErrNotLeader is returned by a manager that is not the elected
	// leader; clients retry against the current leader.
	ErrNotLeader = errors.New("lease: not the lease manager leader")
	// ErrHeld means the lease is owned by someone else and unexpired.
	ErrHeld = errors.New("lease: held by another owner")
	// ErrNotHeld means a renew/release from a non-owner.
	ErrNotHeld = errors.New("lease: caller does not hold the lease")
)

// Elections is the slice of the consensus elector the manager needs.
type Elections interface {
	IsLeader() bool
	Term() uint64
}

// alwaysLeader is used for single-manager deployments and tests.
type alwaysLeader struct{}

func (alwaysLeader) IsLeader() bool { return true }
func (alwaysLeader) Term() uint64   { return 1 }

// AlwaysLeader returns an Elections that always claims leadership.
func AlwaysLeader() Elections { return alwaysLeader{} }

// Grant describes a held lease.
type Grant struct {
	Service string
	Owner   string
	Epoch   uint64
	Kind    Kind
	Expires time.Time
	// Term is the manager term that issued the grant.
	Term uint64
}

// Manager is the lease-manager replica on one management server. All
// replicas share the persistent table; only the consensus leader grants.
type Manager struct {
	clock     vclock.Clock
	elections Elections
	table     *store.Store
	ttl       time.Duration

	mu        sync.Mutex
	listeners []func(Grant) // push-lease expiry notifications
	sweepT    vclock.Timer
	running   bool
	gen       uint64 // bumped by Stop so in-flight sweep callbacks retire
}

// NewManager creates a manager replica. ttl is the default lease period
// (the grace period); table is the shared persistent store.
func NewManager(clock vclock.Clock, elections Elections, table *store.Store, ttl time.Duration) *Manager {
	if ttl <= 0 {
		ttl = time.Second
	}
	return &Manager{clock: clock, elections: elections, table: table, ttl: ttl}
}

// TTL returns the lease period.
func (m *Manager) TTL() time.Duration { return m.ttl }

// OnExpired registers a push-lease expiry listener. Listeners run on the
// sweep timer goroutine.
func (m *Manager) OnExpired(fn func(Grant)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, fn)
}

// Start begins the expiry sweep (push leases). Starting a running manager
// is a no-op.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return
	}
	m.running = true
	gen := m.gen
	m.mu.Unlock()
	m.scheduleSweep(gen)
}

// Stop halts the sweep. It is idempotent and safe to race an in-flight
// sweep callback: bumping the generation retires any callback that already
// fired but has not re-armed yet, so no sweeper can outlive Stop.
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	m.running = false
	m.gen++
	t := m.sweepT
	m.sweepT = nil
	m.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}

func (m *Manager) scheduleSweep(gen uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.running || gen != m.gen {
		return
	}
	m.sweepT = m.clock.AfterFunc(m.ttl/2, func() {
		m.mu.Lock()
		live := m.running && gen == m.gen
		m.mu.Unlock()
		if !live {
			return
		}
		m.sweepOnce()
		m.scheduleSweep(gen)
	})
}

// sweepOnce finds expired push leases, revokes them (bumping the epoch),
// and notifies listeners so the singleton framework re-places the service.
func (m *Manager) sweepOnce() {
	if !m.elections.IsLeader() {
		return
	}
	m.mu.Lock()
	listeners := append([]func(Grant){}, m.listeners...)
	m.mu.Unlock()
	now := m.clock.Now()
	for _, row := range m.table.Scan(Table, nil) {
		g, err := rowToGrant(row)
		if err != nil || g.Kind != Push || g.Owner == "" {
			continue
		}
		if now.After(g.Expires) {
			// Revoke: clear the owner so re-placement can grant anew. The
			// version check makes competing managers collide harmlessly.
			revoked := g
			revoked.Owner = ""
			revoked.Epoch = g.Epoch + 1
			revoked.Term = m.elections.Term()
			sess := m.table.Session("lease-sweep-" + row.Key + "-" + strconv.FormatUint(g.Epoch, 10))
			sess.UpdateVersioned(Table, row.Key, row.Version, grantToFields(revoked))
			if err := sess.Commit(""); err != nil {
				continue
			}
			for _, fn := range listeners {
				fn(g)
			}
		}
	}
}

// Acquire grants the lease for service to owner if it is free or expired.
// It returns the grant (with its fencing epoch).
func (m *Manager) Acquire(service, owner string, kind Kind) (Grant, error) {
	if !m.elections.IsLeader() {
		return Grant{}, ErrNotLeader
	}
	now := m.clock.Now()
	row, exists := m.table.Get(Table, service)
	var cur Grant
	if exists {
		var err error
		cur, err = rowToGrant(row)
		if err != nil {
			return Grant{}, err
		}
		if cur.Owner != "" && cur.Owner != owner && now.Before(cur.Expires) {
			return Grant{}, fmt.Errorf("%w: %s by %s", ErrHeld, service, cur.Owner)
		}
	}
	g := Grant{
		Service: service,
		Owner:   owner,
		Kind:    kind,
		Expires: now.Add(m.ttl),
		Term:    m.elections.Term(),
		Epoch:   cur.Epoch + 1,
	}
	if exists && cur.Owner == owner && now.Before(cur.Expires) {
		g.Epoch = cur.Epoch // re-acquire by the holder keeps the epoch
	}
	sess := m.table.Session(fmt.Sprintf("lease-acq-%s-%d", service, g.Epoch))
	if exists {
		sess.UpdateVersioned(Table, service, row.Version, grantToFields(g))
	} else {
		sess.Insert(Table, service, grantToFields(g))
	}
	if err := sess.Commit(""); err != nil {
		return Grant{}, fmt.Errorf("%w: lost the table race: %v", ErrHeld, err)
	}
	return g, nil
}

// Renew extends owner's lease. The epoch is unchanged.
func (m *Manager) Renew(service, owner string) (Grant, error) {
	if !m.elections.IsLeader() {
		return Grant{}, ErrNotLeader
	}
	row, exists := m.table.Get(Table, service)
	if !exists {
		return Grant{}, ErrNotHeld
	}
	g, err := rowToGrant(row)
	if err != nil {
		return Grant{}, err
	}
	if g.Owner != owner {
		return Grant{}, fmt.Errorf("%w: %s owned by %s", ErrNotHeld, service, g.Owner)
	}
	// A holder that let its lease expire must re-acquire (it may have been
	// re-granted in between — renewing would mask the epoch change).
	if m.clock.Now().After(g.Expires) {
		return Grant{}, fmt.Errorf("%w: lease expired", ErrNotHeld)
	}
	g.Expires = m.clock.Now().Add(m.ttl)
	g.Term = m.elections.Term()
	sess := m.table.Session(fmt.Sprintf("lease-renew-%s-%d-%d", service, g.Epoch, row.Version))
	sess.UpdateVersioned(Table, service, row.Version, grantToFields(g))
	if err := sess.Commit(""); err != nil {
		return Grant{}, fmt.Errorf("%w: %v", ErrNotHeld, err)
	}
	return g, nil
}

// Release voluntarily gives up the lease (clean shutdown or migration).
func (m *Manager) Release(service, owner string) error {
	if !m.elections.IsLeader() {
		return ErrNotLeader
	}
	row, exists := m.table.Get(Table, service)
	if !exists {
		return nil
	}
	g, err := rowToGrant(row)
	if err != nil {
		return err
	}
	if g.Owner != owner {
		return fmt.Errorf("%w: owned by %s", ErrNotHeld, g.Owner)
	}
	g.Owner = ""
	g.Epoch++
	sess := m.table.Session(fmt.Sprintf("lease-rel-%s-%d", service, g.Epoch))
	sess.UpdateVersioned(Table, service, row.Version, grantToFields(g))
	return sess.Commit("")
}

// OwnerOf reports the current holder of a service lease ("" if free or
// expired).
func (m *Manager) OwnerOf(service string) (owner string, epoch uint64) {
	row, exists := m.table.Get(Table, service)
	if !exists {
		return "", 0
	}
	g, err := rowToGrant(row)
	if err != nil {
		return "", 0
	}
	if g.Owner == "" || m.clock.Now().After(g.Expires) {
		return "", g.Epoch
	}
	return g.Owner, g.Epoch
}

// --- persistence mapping ----------------------------------------------------

func grantToFields(g Grant) map[string]string {
	return map[string]string{
		"owner":   g.Owner,
		"epoch":   strconv.FormatUint(g.Epoch, 10),
		"kind":    strconv.Itoa(int(g.Kind)),
		"expires": strconv.FormatInt(g.Expires.UnixNano(), 10),
		"term":    strconv.FormatUint(g.Term, 10),
	}
}

func rowToGrant(row store.Row) (Grant, error) {
	epoch, err1 := strconv.ParseUint(row.Fields["epoch"], 10, 64)
	kind, err2 := strconv.Atoi(row.Fields["kind"])
	expNs, err3 := strconv.ParseInt(row.Fields["expires"], 10, 64)
	term, err4 := strconv.ParseUint(row.Fields["term"], 10, 64)
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			return Grant{}, fmt.Errorf("lease: corrupt lease row %q: %v", row.Key, err)
		}
	}
	return Grant{
		Service: row.Key,
		Owner:   row.Fields["owner"],
		Epoch:   epoch,
		Kind:    Kind(kind),
		Expires: time.Unix(0, expNs),
		Term:    term,
	}, nil
}

// ---------------------------------------------------------------------------
// RMI surface

// Service exposes the manager to lease holders on other servers. Followers
// answer ErrNotLeader as an application error, so clients never fail over
// blindly.
func (m *Manager) RMIService() *rmi.Service {
	appErr := func(err error) ([]byte, error) {
		return nil, &rmi.AppError{Msg: err.Error()}
	}
	encodeGrant := func(g Grant) []byte {
		e := wire.NewEncoder(64)
		e.String(g.Service)
		e.String(g.Owner)
		e.Uint64(g.Epoch)
		e.Byte(byte(g.Kind))
		e.Int64(g.Expires.UnixNano())
		e.Uint64(g.Term)
		return e.Bytes()
	}
	return &rmi.Service{
		Name:   ServiceName,
		System: true,
		Methods: map[string]rmi.MethodSpec{
			"acquire": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
				d := wire.NewDecoder(c.Args)
				service, owner, kind := d.String(), d.String(), Kind(d.Byte())
				if err := d.Err(); err != nil {
					return nil, err
				}
				g, err := m.Acquire(service, owner, kind)
				if err != nil {
					return appErr(err)
				}
				return encodeGrant(g), nil
			}},
			"renew": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
				d := wire.NewDecoder(c.Args)
				service, owner := d.String(), d.String()
				if err := d.Err(); err != nil {
					return nil, err
				}
				g, err := m.Renew(service, owner)
				if err != nil {
					return appErr(err)
				}
				return encodeGrant(g), nil
			}},
			"release": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
				d := wire.NewDecoder(c.Args)
				service, owner := d.String(), d.String()
				if err := d.Err(); err != nil {
					return nil, err
				}
				if err := m.Release(service, owner); err != nil {
					return appErr(err)
				}
				return nil, nil
			}},
			"owner": {Idempotent: true, Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
				d := wire.NewDecoder(c.Args)
				service := d.String()
				if err := d.Err(); err != nil {
					return nil, err
				}
				owner, epoch := m.OwnerOf(service)
				e := wire.NewEncoder(32)
				e.String(owner)
				e.Uint64(epoch)
				return e.Bytes(), nil
			}},
		},
	}
}

// DecodeGrant parses the wire form returned by acquire/renew.
func DecodeGrant(b []byte) (Grant, error) {
	d := wire.NewDecoder(b)
	g := Grant{
		Service: d.String(),
		Owner:   d.String(),
		Epoch:   d.Uint64(),
		Kind:    Kind(d.Byte()),
	}
	g.Expires = time.Unix(0, d.Int64())
	g.Term = d.Uint64()
	return g, d.Err()
}
