package tuple_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"wls/internal/kv"
	"wls/internal/kv/kvtest"
	"wls/internal/tuple"
	"wls/internal/tx"
	"wls/internal/vclock"
)

// kvCase gives the tuple suite open/reopen over each kv backend.
type kvCase struct {
	name    string
	durable bool
	open    func(t *testing.T, dir string) kv.Store
}

func kvCases() []kvCase {
	return []kvCase{
		{"mem", false, func(t *testing.T, dir string) kv.Store { return kv.NewMem() }},
		{"log", true, func(t *testing.T, dir string) kv.Store {
			s, err := kv.OpenLog(filepath.Join(dir, "t.log"), kv.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"wal", true, func(t *testing.T, dir string) kv.Store {
			s, err := kv.OpenWAL(filepath.Join(dir, "t.db"), kv.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
}

func forEachKV(t *testing.T, fn func(t *testing.T, kc kvCase)) {
	for _, kc := range kvCases() {
		kc := kc
		t.Run(kc.name, func(t *testing.T) { fn(t, kc) })
	}
}

func open(t *testing.T, kc kvCase, dir string) *tuple.Store {
	t.Helper()
	st, err := tuple.New(kc.open(t, dir))
	if err != nil {
		t.Fatalf("tuple.New: %v", err)
	}
	return st
}

func TestSpacesAreIsolated(t *testing.T) {
	forEachKV(t, func(t *testing.T, kc kvCase) {
		st := open(t, kc, t.TempDir())
		defer st.Close()
		if err := st.Put("a", "k", []byte("va")); err != nil {
			t.Fatal(err)
		}
		if err := st.Put("ab", "k", []byte("vab")); err != nil {
			t.Fatal(err)
		}
		if v, _ := st.Get("a", "k"); string(v) != "va" {
			t.Fatalf("Get(a,k) = %q", v)
		}
		// The space boundary is exact: "a" does not see "ab"'s keys even
		// though "ab" is a string-prefix of neither-space's encoding.
		n := 0
		st.Scan("a", "", func(k string, v []byte) bool { n++; return true })
		if n != 1 {
			t.Fatalf("Scan(a) crossed into space ab: %d keys", n)
		}
		if got := st.Count("a", ""); got != 1 {
			t.Fatalf("Count(a) = %d", got)
		}
		if got := st.Spaces(); !reflect.DeepEqual(got, []string{"a", "ab"}) {
			t.Fatalf("Spaces() = %v", got)
		}
	})
}

func TestApplyCrossSpaceAtomicVisible(t *testing.T) {
	forEachKV(t, func(t *testing.T, kc kvCase) {
		st := open(t, kc, t.TempDir())
		defer st.Close()
		err := st.Apply([]tuple.Op{
			{Kind: kv.OpPut, Space: "queue", Key: "m1", Value: []byte("msg")},
			{Kind: kv.OpPut, Space: "conv", Key: "c1", Value: []byte("state")},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Get("queue", "m1"); !ok {
			t.Fatal("queue write lost")
		}
		if _, ok := st.Get("conv", "c1"); !ok {
			t.Fatal("conv write lost")
		}
	})
}

func TestSessionPrepareCommit(t *testing.T) {
	forEachKV(t, func(t *testing.T, kc kvCase) {
		st := open(t, kc, t.TempDir())
		defer st.Close()
		sess := st.Session()
		sess.Put("s", "k1", []byte("v1"))
		sess.Delete("s", "k0")
		if err := st.Put("s", "k0", []byte("old")); err != nil {
			t.Fatal(err)
		}
		if err := sess.Prepare("tx1"); err != nil {
			t.Fatal(err)
		}
		// Prepared but uncommitted: no data visible yet.
		if _, ok := st.Get("s", "k1"); ok {
			t.Fatal("staged write visible before commit")
		}
		if got := st.InDoubt(); !reflect.DeepEqual(got, []string{"tx1"}) {
			t.Fatalf("InDoubt = %v", got)
		}
		if err := sess.Commit("tx1"); err != nil {
			t.Fatal(err)
		}
		if v, ok := st.Get("s", "k1"); !ok || string(v) != "v1" {
			t.Fatalf("committed write: %q %v", v, ok)
		}
		if _, ok := st.Get("s", "k0"); ok {
			t.Fatal("staged delete not applied")
		}
		if got := st.InDoubt(); len(got) != 0 {
			t.Fatalf("InDoubt after commit = %v", got)
		}
		// Idempotent re-commit (recovery path).
		if err := sess.Commit("tx1"); err != nil {
			t.Fatalf("re-commit: %v", err)
		}
	})
}

func TestSessionRollback(t *testing.T) {
	forEachKV(t, func(t *testing.T, kc kvCase) {
		st := open(t, kc, t.TempDir())
		defer st.Close()
		sess := st.Session()
		sess.Put("s", "k", []byte("v"))
		if err := sess.Prepare("tx1"); err != nil {
			t.Fatal(err)
		}
		if err := sess.Rollback("tx1"); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Get("s", "k"); ok {
			t.Fatal("rolled-back write visible")
		}
		if got := st.InDoubt(); len(got) != 0 {
			t.Fatalf("InDoubt after rollback = %v", got)
		}
	})
}

func TestInDoubtSurvivesRestart(t *testing.T) {
	forEachKV(t, func(t *testing.T, kc kvCase) {
		if !kc.durable {
			t.Skip("in-memory backend")
		}
		dir := t.TempDir()
		st := open(t, kc, dir)
		sess := st.Session()
		sess.Put("s", "k", []byte("v"))
		if err := sess.Prepare("tx-indoubt"); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// Restart: the prepared transaction must come back in doubt, and
		// resolving it must apply the staged ops.
		st2 := open(t, kc, dir)
		if got := st2.InDoubt(); !reflect.DeepEqual(got, []string{"tx-indoubt"}) {
			t.Fatalf("InDoubt after restart = %v", got)
		}
		if _, ok := st2.Get("s", "k"); ok {
			t.Fatal("in-doubt write visible before resolution")
		}
		if err := st2.ResolveInDoubt("tx-indoubt", true); err != nil {
			t.Fatal(err)
		}
		if v, ok := st2.Get("s", "k"); !ok || string(v) != "v" {
			t.Fatalf("resolved commit lost: %q %v", v, ok)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
		// And the resolution itself is durable.
		st3 := open(t, kc, dir)
		defer st3.Close()
		if got := st3.InDoubt(); len(got) != 0 {
			t.Fatalf("InDoubt after resolved restart = %v", got)
		}
		if _, ok := st3.Get("s", "k"); !ok {
			t.Fatal("resolution not durable")
		}
	})
}

func TestInDoubtAbortDiscards(t *testing.T) {
	forEachKV(t, func(t *testing.T, kc kvCase) {
		if !kc.durable {
			t.Skip("in-memory backend")
		}
		dir := t.TempDir()
		st := open(t, kc, dir)
		sess := st.Session()
		sess.Put("s", "k", []byte("v"))
		if err := sess.Prepare("tx-abort"); err != nil {
			t.Fatal(err)
		}
		st.Close()
		st2 := open(t, kc, dir)
		if err := st2.ResolveInDoubt("tx-abort", false); err != nil {
			t.Fatal(err)
		}
		st2.Close()
		st3 := open(t, kc, dir)
		defer st3.Close()
		if _, ok := st3.Get("s", "k"); ok {
			t.Fatal("aborted write visible")
		}
		if got := st3.InDoubt(); len(got) != 0 {
			t.Fatalf("InDoubt = %v", got)
		}
	})
}

func TestWorksAsTxResource(t *testing.T) {
	forEachKV(t, func(t *testing.T, kc kvCase) {
		st := open(t, kc, t.TempDir())
		defer st.Close()
		mgr := tx.NewManager("s1", vclock.NewVirtualAtZero(), nil, nil)
		txn := mgr.Begin(0)
		sess := st.Session()
		sess.Put("jms.queue.orders", "m1", []byte("order"))
		sess.Put("conversations", "c1", []byte("state"))
		txn.Enlist("tuple", sess)
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		if mgr.Metrics().Counter("tx.1pc").Value() != 1 {
			t.Fatal("co-located commit should be 1PC")
		}
		if _, ok := st.Get("jms.queue.orders", "m1"); !ok {
			t.Fatal("message lost")
		}
	})
}

// TestCommitCrashAtomicity sweeps crash points through the commit of a
// prepared transaction: recovery must find it either fully applied (stage
// record gone) or still pending (no data visible) — never in between.
func TestCommitCrashAtomicity(t *testing.T) {
	cases := []struct {
		name string
		open func(dir string, fs kv.FS) (kv.Store, error)
	}{
		{"log", func(dir string, fs kv.FS) (kv.Store, error) {
			return kv.OpenLog(filepath.Join(dir, "t.log"), kv.Options{SyncEveryCommit: true, FS: fs})
		}},
		{"wal", func(dir string, fs kv.FS) (kv.Store, error) {
			return kv.OpenWAL(filepath.Join(dir, "t.db"), kv.Options{SyncEveryCommit: true, FS: fs, CheckpointBytes: -1})
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for step := 0; step < 12; step++ {
				dir := t.TempDir()
				// Prepare durably on the real filesystem.
				kvs, err := c.open(dir, nil)
				if err != nil {
					t.Fatal(err)
				}
				st, err := tuple.New(kvs)
				if err != nil {
					t.Fatal(err)
				}
				sess := st.Session()
				for i := 0; i < 3; i++ {
					sess.Put("s", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
				}
				if err := sess.Prepare("txc"); err != nil {
					t.Fatal(err)
				}
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				// Reopen behind a crashing filesystem and drive the commit
				// into the crash point.
				cfs := kvtest.NewCrashFS(nil, step)
				kvs2, err := c.open(dir, cfs)
				var committed bool
				if err == nil {
					st2, terr := tuple.New(kvs2)
					if terr != nil {
						t.Fatalf("step %d: tuple.New: %v", step, terr)
					}
					committed = st2.ResolveInDoubt("txc", true) == nil
					st2.Close()
				}
				if !cfs.Crashed() {
					// Budget exceeded the whole commit: nothing left to test
					// at larger steps.
					if !committed {
						t.Fatalf("step %d: no crash but commit failed", step)
					}
					break
				}
				kvs3, err := c.open(dir, nil)
				if err != nil {
					t.Fatalf("step %d: reopen: %v", step, err)
				}
				st3, err := tuple.New(kvs3)
				if err != nil {
					t.Fatalf("step %d: tuple recovery: %v", step, err)
				}
				pending := len(st3.InDoubt()) == 1
				applied := st3.Count("s", "") == 3
				if pending && applied {
					t.Fatalf("step %d: transaction both pending and applied", step)
				}
				if !pending && !applied {
					t.Fatalf("step %d: transaction lost: neither pending nor applied", step)
				}
				if !pending && st3.Count("s", "") != 3 {
					t.Fatalf("step %d: partial commit: %d of 3 keys", step, st3.Count("s", ""))
				}
				st3.Close()
			}
		})
	}
}
