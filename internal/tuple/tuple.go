// Package tuple is the middle layer of the persistence stack: named
// keyspaces ("spaces") and XA transaction sessions, implemented on the
// flat ordered bytes of a kv.Store. The layering is
//
//	kv      flat ordered key → value, atomic batches, three backends
//	tuple   spaces, cross-space batches, two-phase-commit sessions
//	store   tables, versioned rows, triggers, change log (wls/internal/store)
//
// A space's entries live under the kv prefix "<space>\x00", so per-space
// scans are kv prefix scans and spaces cannot collide. Two-phase staging
// does NOT extend the kv interface: a prepared transaction's ops are
// encoded into an ordinary kv record under the reserved "\x00tx\x00"
// prefix (no space may start with NUL, so data scans never see it).
// Prepare durably writes that record — the yes vote survives a crash —
// and Commit applies the staged ops AND deletes the stage record in one
// atomic kv batch, so recovery sees a transaction as either pending,
// committed, or aborted, never half-applied.
package tuple

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"wls/internal/kv"
	"wls/internal/wire"
)

// stagePrefix is the reserved kv prefix for prepared-transaction records.
const stagePrefix = "\x00tx\x00"

// Op is one space-addressed mutation.
type Op struct {
	Kind  kv.OpKind
	Space string
	Key   string
	Value []byte
}

// dataKey maps a space-addressed key onto the flat kv keyspace.
func dataKey(space, key string) string { return space + "\x00" + key }

// Store layers spaces and XA sessions over a kv backend.
type Store struct {
	kv kv.Store

	// mu guards pending; kv calls made under it take the backend's own
	// lock, never the other way around.
	//
	//wls:lockorder tuple.Store.mu<tuple.Session.mu
	mu      sync.Mutex
	pending map[string][]Op
}

// New wraps a kv backend, recovering prepared-but-unresolved transactions
// from their durable stage records.
func New(kvs kv.Store) (*Store, error) {
	st := &Store{kv: kvs, pending: make(map[string][]Op)}
	var derr error
	kvs.Scan(stagePrefix, func(k string, v []byte) bool {
		txID := k[len(stagePrefix):]
		ops, err := decodeStaged(v)
		if err != nil {
			derr = fmt.Errorf("tuple: stage record for %q: %w", txID, err)
			return false
		}
		st.pending[txID] = ops
		return true
	})
	if derr != nil {
		return nil, derr
	}
	return st, nil
}

// KV exposes the underlying backend (benchmarks size it, tests poke it).
func (st *Store) KV() kv.Store { return st.kv }

// Get reads one key from a space.
func (st *Store) Get(space, key string) ([]byte, bool) {
	return st.kv.Get(dataKey(space, key))
}

// Put writes one key in a space.
func (st *Store) Put(space, key string, value []byte) error {
	return st.kv.Put(dataKey(space, key), value)
}

// Delete removes one key from a space.
func (st *Store) Delete(space, key string) error {
	return st.kv.Delete(dataKey(space, key))
}

// Scan visits a space's keys carrying prefix, in ascending key order.
func (st *Store) Scan(space, prefix string, fn func(key string, value []byte) bool) {
	skip := len(space) + 1
	st.kv.Scan(dataKey(space, prefix), func(k string, v []byte) bool {
		return fn(k[skip:], v)
	})
}

// Count reports how many keys in a space carry the prefix.
func (st *Store) Count(space, prefix string) int {
	return st.kv.Count(dataKey(space, prefix))
}

// Spaces lists the distinct spaces holding at least one key.
func (st *Store) Spaces() []string {
	seen := map[string]bool{}
	st.kv.Scan("", func(k string, v []byte) bool {
		if strings.HasPrefix(k, "\x00") {
			return true // reserved namespace
		}
		if i := strings.IndexByte(k, 0); i >= 0 {
			seen[k[:i]] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// mapOps translates space-addressed ops to kv ops.
func mapOps(ops []Op) []kv.Op {
	out := make([]kv.Op, len(ops))
	for i, o := range ops {
		out[i] = kv.Op{Kind: o.Kind, Key: dataKey(o.Space, o.Key), Value: o.Value}
	}
	return out
}

// Apply commits a cross-space batch atomically.
func (st *Store) Apply(ops []Op) error {
	return st.kv.Apply(mapOps(ops))
}

// Close closes the underlying backend.
func (st *Store) Close() error { return st.kv.Close() }

// encodeStaged renders a prepared transaction's ops for its stage record.
func encodeStaged(ops []Op) []byte {
	e := wire.NewEncoder(64)
	e.Int(len(ops))
	for _, o := range ops {
		e.Byte(byte(o.Kind))
		e.String(o.Space)
		e.String(o.Key)
		if o.Kind == kv.OpPut {
			e.Bytes2(o.Value)
		}
	}
	return e.Bytes()
}

func decodeStaged(b []byte) ([]Op, error) {
	d := wire.NewDecoder(b)
	n := d.Int()
	if d.Err() != nil || n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("staged op count %d", n)
	}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		o := Op{Kind: kv.OpKind(d.Byte())}
		o.Space = d.String()
		o.Key = d.String()
		switch o.Kind {
		case kv.OpPut:
			o.Value = d.Bytes()
		case kv.OpDelete:
		default:
			return nil, fmt.Errorf("staged op kind %d", o.Kind)
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		ops = append(ops, o)
	}
	return ops, nil
}

// Session is a transactional batch implementing tx.Resource. Mutations
// stage in memory; Prepare makes them durable (the yes vote); Commit
// applies them and retires the stage record in one atomic kv batch.
type Session struct {
	st *Store

	// mu guards the staged ops; it nests inside Store.mu.
	mu     sync.Mutex
	ops    []Op
	staged bool
}

// Session starts a transactional batch.
func (st *Store) Session() *Session { return &Session{st: st} }

// Put stages a write.
func (s *Session) Put(space, key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops = append(s.ops, Op{Kind: kv.OpPut, Space: space, Key: key, Value: append([]byte(nil), value...)})
}

// Delete stages a removal.
func (s *Session) Delete(space, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops = append(s.ops, Op{Kind: kv.OpDelete, Space: space, Key: key})
}

// Prepare implements tx.Resource: the staged ops are written durably
// under the transaction's stage record before the yes vote returns.
func (s *Session) Prepare(txID string) error {
	s.mu.Lock()
	ops := append([]Op{}, s.ops...)
	s.mu.Unlock()
	st := s.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.kv.Put(stagePrefix+txID, encodeStaged(ops)); err != nil {
		return err
	}
	st.pending[txID] = ops
	s.mu.Lock()
	s.staged = true
	s.mu.Unlock()
	return nil
}

// Commit implements tx.Resource. One-phase commits stage implicitly.
// Applying the ops and deleting the stage record is a single atomic kv
// batch: recovery never sees a transaction both applied and pending.
func (s *Session) Commit(txID string) error {
	s.mu.Lock()
	staged := s.staged
	s.mu.Unlock()
	if !staged {
		if err := s.Prepare(txID); err != nil {
			return err
		}
	}
	st := s.st
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.commitLocked(txID)
}

func (st *Store) commitLocked(txID string) error {
	ops, ok := st.pending[txID]
	if !ok {
		return nil // already resolved; idempotent for recovery
	}
	batch := append(mapOps(ops), kv.Op{Kind: kv.OpDelete, Key: stagePrefix + txID})
	if err := st.kv.Apply(batch); err != nil {
		return err
	}
	delete(st.pending, txID)
	return nil
}

// Rollback implements tx.Resource.
func (s *Session) Rollback(txID string) error {
	st := s.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.pending[txID]; !ok {
		s.mu.Lock()
		s.ops = nil
		s.mu.Unlock()
		return nil
	}
	return st.rollbackLocked(txID)
}

func (st *Store) rollbackLocked(txID string) error {
	if err := st.kv.Delete(stagePrefix + txID); err != nil {
		return err
	}
	delete(st.pending, txID)
	return nil
}

// InDoubt lists transactions that were prepared but neither committed nor
// aborted — after a crash the coordinator resolves them.
func (st *Store) InDoubt() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.pending))
	for id := range st.pending {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ResolveInDoubt commits or aborts a prepared transaction by id.
func (st *Store) ResolveInDoubt(txID string, commit bool) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if commit {
		return st.commitLocked(txID)
	}
	return st.rollbackLocked(txID)
}
