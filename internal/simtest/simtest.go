// Package simtest provides the shared simulation fixture used by the test
// suites and benchmarks of the higher layers: a virtual clock, a netsim
// fabric, a gossip bus, and N application servers each with cluster
// membership and an RMI registry.
//
// It lives outside the _test files so that every package (ejb, jms,
// servlet, wsdl, the bench harness, the examples) can build clusters the
// same way.
package simtest

import (
	"fmt"
	"time"

	"wls/internal/cluster"
	"wls/internal/gossip"
	"wls/internal/metrics"
	"wls/internal/netsim"
	"wls/internal/rmi"
	"wls/internal/vclock"
)

// Server bundles one simulated application server's plumbing.
type Server struct {
	Name     string
	Endpoint *netsim.Endpoint
	Member   *cluster.Member
	Registry *rmi.Registry
	Metrics  *metrics.Registry
}

// View returns this server's internal-client view for stub creation.
func (s *Server) View() rmi.View { return rmi.MemberView{Member: s.Member} }

// Stub creates an internal-client stub on this server.
func (s *Server) Stub(service string, opts ...rmi.StubOption) *rmi.Stub {
	return rmi.NewStub(service, s.Endpoint, s.View(), opts...)
}

// Options configures a fixture.
type Options struct {
	// Servers is the cluster size (default 3).
	Servers int
	// ServersPerMachine controls machine assignment (default 1: every
	// server on its own machine).
	ServersPerMachine int
	// ClusterName defaults to "cluster".
	ClusterName string
	// HeartbeatInterval defaults to 100ms, FailureTimeout to 350ms.
	HeartbeatInterval time.Duration
	FailureTimeout    time.Duration
	// ReplicationGroups assigns each server i the group
	// ReplicationGroups[i % len]. Empty means no groups.
	ReplicationGroups []string
	// PreferredSecondaryGroups is copied to every member.
	PreferredSecondaryGroups []string
	// Seed for deterministic fabric/bus randomness.
	Seed int64
	// RealClock uses the wall clock instead of a virtual one (for
	// benchmarks that measure real throughput).
	RealClock bool
}

// Fixture is a simulated cluster.
type Fixture struct {
	Clock   vclock.Clock
	VClock  *vclock.Virtual // nil when Options.RealClock
	Net     *netsim.Network
	Bus     *gossip.InMemory
	Servers []*Server
	cfg     cluster.Config
}

// New builds and starts a fixture.
func New(opts Options) *Fixture {
	if opts.Servers == 0 {
		opts.Servers = 3
	}
	if opts.ServersPerMachine == 0 {
		opts.ServersPerMachine = 1
	}
	if opts.ClusterName == "" {
		opts.ClusterName = "cluster"
	}
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = 100 * time.Millisecond
	}
	if opts.FailureTimeout == 0 {
		opts.FailureTimeout = 350 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	var clk vclock.Clock
	var vclk *vclock.Virtual
	if opts.RealClock {
		clk = vclock.System
	} else {
		vclk = vclock.NewVirtualAtZero()
		clk = vclk
	}
	f := &Fixture{
		Clock:  clk,
		VClock: vclk,
		Net:    netsim.New(clk, opts.Seed),
		Bus:    gossip.NewInMemory(clk, opts.Seed),
		cfg: cluster.Config{
			Name:              opts.ClusterName,
			HeartbeatInterval: opts.HeartbeatInterval,
			FailureTimeout:    opts.FailureTimeout,
		},
	}
	for i := 0; i < opts.Servers; i++ {
		name := fmt.Sprintf("server-%d", i+1)
		addr := fmt.Sprintf("10.0.0.%d:7001", i+1)
		machine := fmt.Sprintf("machine-%d", i/opts.ServersPerMachine+1)
		group := ""
		if len(opts.ReplicationGroups) > 0 {
			group = opts.ReplicationGroups[i%len(opts.ReplicationGroups)]
		}
		ep := f.Net.Endpoint(addr)
		reg := metrics.NewRegistry()
		member := cluster.NewMember(f.cfg, clk, f.Bus, cluster.MemberInfo{
			Name:                     name,
			Addr:                     addr,
			Machine:                  machine,
			ReplicationGroup:         group,
			PreferredSecondaryGroups: opts.PreferredSecondaryGroups,
		})
		registry := rmi.NewRegistry(ep, member, reg)
		member.Start()
		f.Servers = append(f.Servers, &Server{
			Name:     name,
			Endpoint: ep,
			Member:   member,
			Registry: registry,
			Metrics:  reg,
		})
	}
	f.Settle(3)
	return f
}

// Server returns the server with the given name, or nil.
func (f *Fixture) Server(name string) *Server {
	for _, s := range f.Servers {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Settle advances the virtual clock through n heartbeat rounds so
// membership and advertisements converge. With a real clock it sleeps.
func (f *Fixture) Settle(n int) {
	for i := 0; i < n; i++ {
		if f.VClock != nil {
			f.VClock.Advance(f.cfg.HeartbeatInterval)
		} else {
			f.Clock.Sleep(f.cfg.HeartbeatInterval)
		}
	}
}

// SettleTimeout advances past the failure-detection timeout.
func (f *Fixture) SettleTimeout() {
	rounds := int(f.cfg.FailureTimeout/f.cfg.HeartbeatInterval) + 2
	f.Settle(rounds)
}

// Crash stops a server's membership and closes its endpoint.
func (f *Fixture) Crash(name string) {
	s := f.Server(name)
	if s == nil {
		return
	}
	s.Member.Stop()
	s.Endpoint.Close()
}

// Freeze pauses a server's endpoint and stops its heartbeats without
// marking it dead — the §3.4 split-brain scenario. Membership heartbeats
// stop because the member is stopped; the endpoint still exists.
func (f *Fixture) Freeze(name string) {
	s := f.Server(name)
	if s == nil {
		return
	}
	s.Member.Stop()
	f.Net.Freeze(s.Endpoint.Addr(), true)
}

// Thaw resumes a frozen server.
func (f *Fixture) Thaw(name string) {
	s := f.Server(name)
	if s == nil {
		return
	}
	f.Net.Freeze(s.Endpoint.Addr(), false)
	s.Member.Start()
}

// Fence cuts a server off at the fabric level — the router fencing of
// §3.4: everything it sends and everything sent to it is dropped.
func (f *Fixture) Fence(name string, fenced bool) {
	if s := f.Server(name); s != nil {
		f.Net.Fence(s.Endpoint.Addr(), fenced)
	}
}

// Partition breaks or heals the link between two named servers.
func (f *Fixture) Partition(a, b string, broken bool) {
	sa, sb := f.Server(a), f.Server(b)
	if sa != nil && sb != nil {
		f.Net.SetPartitioned(sa.Endpoint.Addr(), sb.Endpoint.Addr(), broken)
	}
}

// SetDropRate sets the one-way frame loss probability between two named
// servers (announcement traffic; request/response models TCP and is never
// rate-dropped).
func (f *Fixture) SetDropRate(a, b string, p float64) {
	sa, sb := f.Server(a), f.Server(b)
	if sa != nil && sb != nil {
		f.Net.SetDropRate(sa.Endpoint.Addr(), sb.Endpoint.Addr(), p)
	}
}

// Restart restarts a previously crashed server: a fresh endpoint on the
// same address, a fresh registry, and a new membership incarnation.
// Services must be re-registered by the caller (as a restarted server
// redeploys its applications).
func (f *Fixture) Restart(name string) *Server {
	s := f.Server(name)
	if s == nil {
		return nil
	}
	ep := f.Net.Restart(s.Endpoint.Addr())
	s.Endpoint = ep
	s.Metrics = metrics.NewRegistry()
	s.Registry = rmi.NewRegistry(ep, s.Member, s.Metrics)
	s.Member.Start()
	return s
}

// Stop shuts the whole fixture down.
func (f *Fixture) Stop() {
	for _, s := range f.Servers {
		s.Member.Stop()
		s.Endpoint.Close()
	}
}
