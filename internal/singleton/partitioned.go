package singleton

import (
	"wls/internal/cluster"
	"wls/internal/partition"
	"wls/internal/rmi"
)

// NewPartitionedHost creates a candidacy whose ownership follows the
// partition ring: the service key's ring owner hosts it, every other
// candidate stands down, and the ring's epoch changes re-trigger
// evaluation so the service migrates promptly (handoff, not lease expiry)
// when placement moves. The lease still arbitrates — split-brain safety is
// unchanged — and plain preference/ring-order election remains the
// fallback whenever the ring is absent, empty, or names a dead owner
// (healing).
func NewPartitionedHost(cfg Config, vs *partition.Views, member *cluster.Member, registry *rmi.Registry, impl Activatable, managerAddrs ...string) *Host {
	service := cfg.Service
	cfg.Owner = func() (string, bool) {
		v := vs.Current()
		if v == nil || v.Ring.Len() == 0 {
			return "", false
		}
		return v.Ring.Owner(service), true
	}
	h := NewHost(cfg, member, registry, impl, managerAddrs...)
	// Subscribers must not block (they run under the publisher's lock on
	// the heartbeat goroutine); evaluation does RPC, so spawn.
	vs.OnChange(func(_, _ *partition.View) { go h.evaluate() })
	return h
}
