// Package singleton implements the fourth clustered-service type of §3.4:
// services that are "active on only one server in the cluster at a time".
//
// Two flavours, as in the paper:
//
//   - Continuous singletons (message queues, transaction managers, admin
//     functions) are active on exactly one server at all times. An
//     administrator supplies a preferred-server list and "the clustering
//     infrastructure keeps it on the most-preferred server that is
//     currently active": every candidate runs a Host; the host that is the
//     highest-ranked live candidate acquires the lease, and a lower-ranked
//     owner voluntarily hands off when a better candidate rejoins.
//
//   - On-demand singletons (shared conversations, consistently-cached
//     entities, user profile data) are active on at most one server and
//     are "activated on, or migrated to, the server where [they are] going
//     to be used". OnDemand tries to activate locally, and when another
//     server already owns the instance it returns that owner for remote
//     access.
//
// Split-brain avoidance follows the paper's recipe exactly: ownership is a
// lease (internal/lease) whose period is the grace period; a Host's Guard
// refuses operations once the lease is no longer provably held, so "the
// target server attempts to ensure that all of its operations associated
// with the service complete within the grace period"; and lease epochs act
// as fencing tokens for any state the service writes.
package singleton

import (
	"context"
	"errors"
	"sync"
	"time"

	"wls/internal/cluster"
	"wls/internal/lease"
	"wls/internal/rmi"
	"wls/internal/vclock"
	"wls/internal/wire"
)

// Activatable is the service implementation contract. After Activate the
// service must rebuild its internal state from its backing store (§3.4:
// "after a singleton service is activated, it must establish its own
// internal state by accessing the backend store").
type Activatable interface {
	// Activate is called when this server wins ownership. epoch is the
	// fencing token to tag writes with.
	Activate(epoch uint64) error
	// Deactivate is called when ownership is lost or handed off. It must
	// stop all service operations before returning.
	Deactivate()
}

// FuncService adapts two funcs to Activatable.
type FuncService struct {
	OnActivate   func(epoch uint64) error
	OnDeactivate func()
}

// Activate implements Activatable.
func (f FuncService) Activate(epoch uint64) error {
	if f.OnActivate == nil {
		return nil
	}
	return f.OnActivate(epoch)
}

// Deactivate implements Activatable.
func (f FuncService) Deactivate() {
	if f.OnDeactivate != nil {
		f.OnDeactivate()
	}
}

// ErrNotOwner is returned by Guard when this server does not (provably)
// hold the service.
var ErrNotOwner = errors.New("singleton: not the owner")

// Config describes one continuous singleton service.
type Config struct {
	// Service is the unique service name (also the lease key).
	Service string
	// Preferred lists candidate servers, most preferred first. Empty
	// means every cluster member is an equal candidate (ring order
	// breaks ties).
	Preferred []string
	// Owner, when set, names the dynamic best host (the partition ring's
	// owner for the service key — see NewPartitionedHost). It is consulted
	// before Preferred; ok=false or a dead owner falls back to
	// preference/ring-order election, which is how a ring-owned service
	// heals while its owner is down.
	Owner func() (server string, ok bool)
	// RetryInterval is how often a non-owner candidate re-attempts the
	// lease (defaults to the lease TTL).
	RetryInterval time.Duration
}

// Host is one server's candidacy for a continuous singleton service.
type Host struct {
	cfg      Config
	server   string
	clock    vclock.Clock
	member   *cluster.Member
	holder   *lease.Holder
	impl     Activatable
	node     rmi.Node
	managers []string
	retryIv  time.Duration

	// mu guards activation state; ownership checks read the lease
	// holder while it is held (Holder.Held only, never Acquire).
	//
	//wls:lockorder singleton.Host.mu<lease.Holder.mu
	mu       sync.Mutex
	active   bool
	stopped  bool
	retryT   vclock.Timer
	freeSeen int // consecutive free-lease sightings (second-chance patience)
}

// NewHost creates a candidacy on the given server's RMI registry; the
// registry carries the handoff protocol by which a more-preferred candidate
// reclaims the service from a lower-ranked owner.
func NewHost(cfg Config, member *cluster.Member, registry *rmi.Registry, impl Activatable, managerAddrs ...string) *Host {
	self := member.Self().Name
	node := registry.Node()
	h := &Host{
		cfg:      cfg,
		server:   self,
		clock:    member.Clock(),
		member:   member,
		impl:     impl,
		node:     node,
		managers: managerAddrs,
		holder:   lease.NewHolder(member.Clock(), node, cfg.Service, self, lease.Push, managerAddrs...),
		retryIv:  cfg.RetryInterval,
	}
	if h.retryIv <= 0 {
		h.retryIv = 500 * time.Millisecond
	}
	h.holder.OnLost(h.onLeaseLost)
	registry.Register(h.handoffService())
	return h
}

// handoffServiceName is the per-service RMI endpoint for migration requests.
func handoffServiceName(service string) string { return "wls.singleton." + service }

// handoffService answers migration requests: a strictly better-ranked live
// candidate may reclaim the service ("keeps it on the most-preferred server
// that is currently active"), in which case this owner deactivates and
// releases before replying.
func (h *Host) handoffService() *rmi.Service {
	return &rmi.Service{
		Name:   handoffServiceName(h.cfg.Service),
		System: true,
		Methods: map[string]rmi.MethodSpec{
			"handoff": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
				d := wire.NewDecoder(c.Args)
				requester := d.String()
				if err := d.Err(); err != nil {
					return nil, err
				}
				if !h.Active() {
					return nil, &rmi.AppError{Msg: "not the owner"}
				}
				if !h.outranks(requester) {
					return nil, &rmi.AppError{Msg: "requester does not outrank owner"}
				}
				h.deactivate(true)
				return nil, nil
			}},
		},
	}
}

// outranks reports whether requester is a strictly better host than this
// server: the dynamic owner when one is configured, preference rank
// otherwise.
func (h *Host) outranks(requester string) bool {
	if h.cfg.Owner != nil {
		if own, ok := h.cfg.Owner(); ok && own != "" {
			if own == requester {
				return true
			}
			if own == h.server {
				return false
			}
		}
	}
	return h.rankOf(requester) < h.rank()
}

// rankOf returns a server's preference rank (len(Preferred) if unlisted).
func (h *Host) rankOf(server string) int {
	for i, name := range h.cfg.Preferred {
		if name == server {
			return i
		}
	}
	return len(h.cfg.Preferred)
}

// Start begins competing for ownership and watching membership for
// preference-based handoff.
func (h *Host) Start() {
	h.mu.Lock()
	h.stopped = false
	h.mu.Unlock()
	h.member.OnEvent(func(ev cluster.Event) {
		// A higher-preference candidate came back: hand off. A failure of
		// the current owner: try to take over (the lease expiry also
		// covers this; the event just makes it prompt).
		switch ev.Kind {
		case cluster.EventJoined, cluster.EventFailed:
			h.evaluate()
		}
	})
	h.evaluate()
	h.scheduleRetry()
}

// Stop abandons the candidacy; if active, the service deactivates and the
// lease is released so a peer can take over promptly.
func (h *Host) Stop() {
	h.mu.Lock()
	h.stopped = true
	t := h.retryT
	h.retryT = nil
	wasActive := h.active
	h.active = false
	h.mu.Unlock()
	if t != nil {
		t.Stop()
	}
	if wasActive {
		h.impl.Deactivate()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = h.holder.Release(ctx)
		cancel()
	} else {
		h.holder.Stop()
	}
}

// Active reports whether this host currently runs the service.
func (h *Host) Active() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.active && h.holder.Held()
}

// Epoch returns the fencing epoch of the current ownership (0 if inactive).
func (h *Host) Epoch() uint64 {
	if !h.Active() {
		return 0
	}
	return h.holder.Epoch()
}

// Guard runs op only while ownership is provably held, implementing the
// grace-period contract: the lease must be valid both before and after the
// operation, so the op provably completed within the lease period.
func (h *Host) Guard(op func() error) error {
	if !h.Active() {
		return ErrNotOwner
	}
	if err := op(); err != nil {
		return err
	}
	if !h.Active() {
		// Ownership may have moved mid-operation; the caller must treat
		// the result as unreliable (and rely on epoch fencing for writes).
		return ErrNotOwner
	}
	return nil
}

// rank returns this server's preference rank (lower is better) and whether
// it is the best-ranked live candidate right now.
func (h *Host) isBestCandidate() bool {
	alive := h.member.Alive()
	aliveSet := make(map[string]bool, len(alive))
	for _, m := range alive {
		aliveSet[m.Name] = true
	}
	if h.cfg.Owner != nil {
		if own, ok := h.cfg.Owner(); ok && own != "" && aliveSet[own] {
			// The ring names a live owner: it hosts, everyone else stands
			// down. A dead or unknown owner falls through to election.
			return own == h.server
		}
	}
	if len(h.cfg.Preferred) == 0 {
		// Ring order breaks ties: first live server wins.
		return len(alive) > 0 && alive[0].Name == h.server
	}
	for _, name := range h.cfg.Preferred {
		if aliveSet[name] {
			return name == h.server
		}
	}
	// No preferred server is alive: any live server may host it; ring
	// order breaks the tie.
	return len(alive) > 0 && alive[0].Name == h.server
}

// evaluate decides whether to acquire, keep, or hand off ownership.
func (h *Host) evaluate() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	active := h.active
	h.mu.Unlock()

	best := h.isBestCandidate()
	switch {
	case !active && best:
		if h.tryAcquire() {
			return
		}
		// The lease is held by a lower-ranked owner (e.g. we just
		// rejoined): ask it to hand the service off, then take the lease.
		if h.requestHandoff() {
			h.tryAcquire()
		}
	case !active && !best:
		// Second chance: preference only arbitrates between live
		// candidacies. If the lease stays free (the preferred server is up
		// but not hosting — e.g. its candidacy was stopped), a lower-ranked
		// candidate takes it rather than leaving the service down. Patience
		// is staggered by rank so the best candidate always gets the first
		// shot and candidates do not trade the lease back and forth.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		owner, _, err := lease.QueryOwner(ctx, h.node, h.cfg.Service, h.managers...)
		cancel()
		if err != nil || owner != "" {
			h.mu.Lock()
			h.freeSeen = 0
			h.mu.Unlock()
			return
		}
		h.mu.Lock()
		h.freeSeen++
		patient := h.freeSeen > h.rank()
		h.mu.Unlock()
		if patient {
			h.tryAcquire()
		}
	}
}

// rank returns this server's position on the preferred list (worst-case
// the list length for unlisted servers).
func (h *Host) rank() int { return h.rankOf(h.server) }

// requestHandoff asks the current owner to migrate the service here.
func (h *Host) requestHandoff() bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	owner, _, err := lease.QueryOwner(ctx, h.node, h.cfg.Service, h.managers...)
	if err != nil || owner == "" || owner == h.server {
		return owner == "" // free lease: worth re-trying acquire
	}
	info, ok := h.member.Lookup(owner)
	if !ok {
		return false // owner presumed dead; the lease will expire
	}
	stub := rmi.NewStub(handoffServiceName(h.cfg.Service), h.node, rmi.StaticView(info.Addr))
	e := wire.NewEncoder(16)
	e.String(h.server)
	_, err = stub.Invoke(ctx, "handoff", e.Bytes())
	return err == nil
}

func (h *Host) tryAcquire() bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	err := h.holder.Acquire(ctx)
	cancel()
	if err != nil {
		return false // held elsewhere or manager unreachable; retry later
	}
	if err := h.impl.Activate(h.holder.Epoch()); err != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = h.holder.Release(ctx)
		cancel()
		return false
	}
	h.mu.Lock()
	h.active = true
	h.freeSeen = 0
	h.mu.Unlock()
	return true
}

func (h *Host) deactivate(release bool) {
	h.mu.Lock()
	if !h.active {
		h.mu.Unlock()
		return
	}
	h.active = false
	h.mu.Unlock()
	h.impl.Deactivate()
	if release {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = h.holder.Release(ctx)
		cancel()
	}
}

func (h *Host) onLeaseLost() {
	h.deactivate(false)
}

func (h *Host) scheduleRetry() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.retryT = h.clock.AfterFunc(h.retryIv, func() {
		go func() {
			h.evaluate()
			h.scheduleRetry()
		}()
	})
	h.mu.Unlock()
}
