package singleton

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"wls/internal/cluster"
	"wls/internal/lease"
	"wls/internal/rmi"
	"wls/internal/vclock"
)

// OnDemand manages a family of on-demand singleton instances keyed by
// string (user profiles, shared conversations, consistently-cached
// entities — §3.4). Instances activate on the server that first uses them
// and can be migrated by passivating there and using them elsewhere.
type OnDemand struct {
	family   string
	server   string
	clock    vclock.Clock
	node     rmi.Node
	managers []string
	factory  func(key string) Activatable

	mu     sync.Mutex
	active map[string]*odEntry
}

type odEntry struct {
	holder *lease.Holder
	impl   Activatable
}

// NewOnDemand creates the manager for one family of instances. factory
// builds the instance implementation when a key activates locally.
func NewOnDemand(family, server string, clock vclock.Clock, node rmi.Node, factory func(key string) Activatable, managerAddrs ...string) *OnDemand {
	return &OnDemand{
		family:   family,
		server:   server,
		clock:    clock,
		node:     node,
		managers: managerAddrs,
		factory:  factory,
		active:   make(map[string]*odEntry),
	}
}

func (o *OnDemand) leaseKey(key string) string {
	return "od/" + o.family + "/" + key
}

// Placement is the result of Use: where the instance lives.
type Placement struct {
	// Local reports whether the instance is active on this server.
	Local bool
	// Owner is the owning server's name (self when Local).
	Owner string
	// Epoch is the instance's fencing epoch.
	Epoch uint64
}

// Use ensures the instance for key is active somewhere, preferring this
// server ("it may be activated on, or migrated to, the server where it is
// going to be used"). If another server holds it, the placement names that
// owner for remote access.
func (o *OnDemand) Use(ctx context.Context, key string) (Placement, error) {
	o.mu.Lock()
	if e, ok := o.active[key]; ok && e.holder.Held() {
		p := Placement{Local: true, Owner: o.server, Epoch: e.holder.Epoch()}
		o.mu.Unlock()
		return p, nil
	}
	o.mu.Unlock()

	h := lease.NewHolder(o.clock, o.node, o.leaseKey(key), o.server, lease.Pull, o.managers...)
	err := h.Acquire(ctx)
	if err == nil {
		impl := o.factory(key)
		if aerr := impl.Activate(h.Epoch()); aerr != nil {
			rctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = h.Release(rctx)
			cancel()
			return Placement{}, aerr
		}
		entry := &odEntry{holder: h, impl: impl}
		h.OnLost(func() {
			o.mu.Lock()
			if o.active[key] == entry {
				delete(o.active, key)
			}
			o.mu.Unlock()
			impl.Deactivate()
		})
		o.mu.Lock()
		o.active[key] = entry
		o.mu.Unlock()
		return Placement{Local: true, Owner: o.server, Epoch: h.Epoch()}, nil
	}

	// Someone else owns it: find out who and access remotely.
	owner, epoch, qerr := lease.QueryOwner(ctx, o.node, o.leaseKey(key), o.managers...)
	if qerr != nil {
		return Placement{}, fmt.Errorf("singleton: cannot locate %s/%s: %v (acquire: %v)", o.family, key, qerr, err)
	}
	if owner == "" {
		// Raced: the lease freed between our attempts. Caller retries.
		return Placement{}, fmt.Errorf("singleton: %s/%s placement raced, retry", o.family, key)
	}
	return Placement{Local: false, Owner: owner, Epoch: epoch}, nil
}

// Passivate deactivates a locally active instance and releases its lease,
// allowing it to migrate to "the server where it is going to be used".
func (o *OnDemand) Passivate(ctx context.Context, key string) error {
	o.mu.Lock()
	e, ok := o.active[key]
	delete(o.active, key)
	o.mu.Unlock()
	if !ok {
		return nil
	}
	e.impl.Deactivate()
	return e.holder.Release(ctx)
}

// ActiveKeys lists the locally active instance keys.
func (o *OnDemand) ActiveKeys() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.active))
	for k, e := range o.active {
		if e.holder.Held() {
			out = append(out, k)
		}
	}
	return out
}

// Stop passivates every local instance.
func (o *OnDemand) Stop() {
	for _, k := range o.ActiveKeys() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = o.Passivate(ctx, k)
		cancel()
	}
}

// ---------------------------------------------------------------------------
// Partitioning and aggregation (§3.4)

// PartitionSet describes a large singleton "partitioned ... into multiple
// instances, each of which handles a different slice of the backend data".
// Each partition is an independent continuous singleton whose preferred
// server list is rotated so the slices spread across the cluster.
type PartitionSet struct {
	// Service is the base service name.
	Service string
	// N is the number of partitions.
	N int
	// Candidates are the servers that may host partitions.
	Candidates []string
}

// PartitionService names the i'th partition's singleton service.
func (p PartitionSet) PartitionService(i int) string {
	return fmt.Sprintf("%s#%d", p.Service, i)
}

// PreferredFor returns the rotated preferred-server list for partition i,
// so partition i lands on Candidates[i mod len] while it is alive.
func (p PartitionSet) PreferredFor(i int) []string {
	n := len(p.Candidates)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for j := 0; j < n; j++ {
		out = append(out, p.Candidates[(i+j)%n])
	}
	return out
}

// PartitionOf maps a data key (message producer, consumer, user ID — §3.4
// suggests all three) to its partition.
func (p PartitionSet) PartitionOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(p.N))
}

// HostsFor builds this server's Host candidacies for every partition. impl
// is called with the partition index to build each partition's service.
func (p PartitionSet) HostsFor(member *cluster.Member, registry *rmi.Registry, impl func(partition int) Activatable, managerAddrs ...string) []*Host {
	hosts := make([]*Host, 0, p.N)
	for i := 0; i < p.N; i++ {
		cfg := Config{
			Service:   p.PartitionService(i),
			Preferred: p.PreferredFor(i),
		}
		hosts = append(hosts, NewHost(cfg, member, registry, impl(i), managerAddrs...))
	}
	return hosts
}
