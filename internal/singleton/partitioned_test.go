package singleton_test

import (
	"testing"
	"time"

	"wls/internal/lease"
	"wls/internal/partition"
	"wls/internal/simtest"
	"wls/internal/singleton"
	"wls/internal/store"
)

// TestPartitionedSingletonFollowsRing: ownership follows the ring owner;
// when the owner dies, the new ring owner takes over (lease election is
// only the arbiter, not the placement policy).
func TestPartitionedSingletonFollowsRing(t *testing.T) {
	const servers = 3
	f := simtest.New(simtest.Options{Servers: servers + 1})
	t.Cleanup(f.Stop)
	admin := f.Servers[servers]
	tbl := store.New("leasedb", f.Clock)
	mgr := lease.NewManager(f.Clock, lease.AlwaysLeader(), tbl, time.Second)
	admin.Registry.Register(mgr.RMIService())
	mgr.Start()
	t.Cleanup(mgr.Stop)

	tr := newTracker()
	var hosts []*singleton.Host
	var views []*partition.Views
	for _, s := range f.Servers[:servers] {
		s.Member.Advertise("app")
		vs := partition.NewViews(partition.Config{Seed: 21})
		partition.Attach(vs, s.Member, "app")
		views = append(views, vs)
		h := singleton.NewPartitionedHost(singleton.Config{Service: "jms-server"},
			vs, s.Member, s.Registry, tr.service(s.Name), admin.Endpoint.Addr())
		hosts = append(hosts, h)
	}
	f.Settle(3)
	for _, h := range hosts {
		h.Start()
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Stop()
		}
	})
	settle := func(rounds int) {
		for i := 0; i < rounds; i++ {
			f.VClock.Advance(250 * time.Millisecond)
			time.Sleep(2 * time.Millisecond)
		}
	}
	settle(8)

	owner := views[0].Current().Ring.Owner("jms-server")
	active := activeHosts(hosts)
	if len(active) != 1 {
		t.Fatalf("want exactly 1 active host, got %d", len(active))
	}
	if got := tr.activeServers(); len(got) != 1 || got[0] != owner {
		t.Fatalf("active on %v, ring owner is %s", got, owner)
	}

	// Kill the ring owner: the ring re-forms and the NEW ring owner (not
	// merely any survivor) must take the service over.
	f.Crash(owner)
	f.SettleTimeout()
	settle(12)

	var survivor *partition.Views
	for i, s := range f.Servers[:servers] {
		if s.Name != owner {
			survivor = views[i]
			break
		}
	}
	newOwner := survivor.Current().Ring.Owner("jms-server")
	if newOwner == owner {
		t.Fatalf("ring still names the dead server %s", owner)
	}
	if got := tr.activeServers(); len(got) != 1 || got[0] != newOwner {
		t.Fatalf("after owner crash, active on %v, ring owner is %s", got, newOwner)
	}
}
