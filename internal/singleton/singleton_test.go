package singleton_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"wls/internal/lease"
	"wls/internal/simtest"
	"wls/internal/singleton"
	"wls/internal/store"
)

// tracker records activation history for assertions.
type tracker struct {
	mu     sync.Mutex
	active map[string]bool // by server name
	log    []string
}

func newTracker() *tracker { return &tracker{active: map[string]bool{}} }

func (tr *tracker) service(server string) singleton.Activatable {
	return singleton.FuncService{
		OnActivate: func(epoch uint64) error {
			tr.mu.Lock()
			defer tr.mu.Unlock()
			tr.active[server] = true
			tr.log = append(tr.log, fmt.Sprintf("activate:%s:%d", server, epoch))
			return nil
		},
		OnDeactivate: func() {
			tr.mu.Lock()
			defer tr.mu.Unlock()
			tr.active[server] = false
			tr.log = append(tr.log, "deactivate:"+server)
		},
	}
}

func (tr *tracker) activeServers() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []string
	for s, a := range tr.active {
		if a {
			out = append(out, s)
		}
	}
	return out
}

// singletonFixture builds a cluster with a lease manager on server-1 and a
// Host candidacy on every server.
type singletonFixture struct {
	f     *simtest.Fixture
	mgr   *lease.Manager
	hosts []*singleton.Host
	tr    *tracker
}

func newSingletonFixture(t *testing.T, servers int, cfg singleton.Config) *singletonFixture {
	t.Helper()
	// One extra member acts as the admin server hosting the lease manager
	// (in production this is the consensus-elected management leader; its
	// own availability is covered by the consensus tests).
	f := simtest.New(simtest.Options{Servers: servers + 1})
	t.Cleanup(f.Stop)
	admin := f.Servers[servers]
	tbl := store.New("leasedb", f.Clock)
	mgr := lease.NewManager(f.Clock, lease.AlwaysLeader(), tbl, time.Second)
	admin.Registry.Register(mgr.RMIService())
	mgr.Start()
	t.Cleanup(mgr.Stop)
	f.Settle(2)

	tr := newTracker()
	var hosts []*singleton.Host
	for _, s := range f.Servers[:servers] {
		h := singleton.NewHost(cfg, s.Member, s.Registry, tr.service(s.Name), admin.Endpoint.Addr())
		hosts = append(hosts, h)
	}
	return &singletonFixture{f: f, mgr: mgr, hosts: hosts, tr: tr}
}

func (sf *singletonFixture) startAll(t *testing.T) {
	for _, h := range sf.hosts {
		h.Start()
	}
	t.Cleanup(func() {
		for _, h := range sf.hosts {
			h.Stop()
		}
	})
}

func (sf *singletonFixture) settle(rounds int) {
	for i := 0; i < rounds; i++ {
		sf.f.VClock.Advance(250 * time.Millisecond)
		time.Sleep(2 * time.Millisecond)
	}
}

func activeHosts(hosts []*singleton.Host) []*singleton.Host {
	var out []*singleton.Host
	for _, h := range hosts {
		if h.Active() {
			out = append(out, h)
		}
	}
	return out
}

func TestContinuousSingletonActivatesOnMostPreferred(t *testing.T) {
	sf := newSingletonFixture(t, 3, singleton.Config{
		Service:   "jms-server",
		Preferred: []string{"server-2", "server-1", "server-3"},
	})
	sf.startAll(t)
	sf.settle(4)

	if !sf.hosts[1].Active() {
		t.Fatal("most-preferred server-2 should host the service")
	}
	if len(activeHosts(sf.hosts)) != 1 {
		t.Fatalf("%d active hosts, want 1", len(activeHosts(sf.hosts)))
	}
}

func TestMigrationOnOwnerCrash(t *testing.T) {
	sf := newSingletonFixture(t, 3, singleton.Config{
		Service:   "q",
		Preferred: []string{"server-2", "server-3", "server-1"},
	})
	sf.startAll(t)
	sf.settle(4)
	if !sf.hosts[1].Active() {
		t.Fatal("server-2 should start as owner")
	}
	epochBefore := sf.hosts[1].Epoch()

	sf.f.Crash("server-2")
	sf.hosts[1].Stop()
	sf.settle(12) // lease expiry + takeover

	act := activeHosts(sf.hosts)
	if len(act) != 1 || !sf.hosts[2].Active() {
		t.Fatalf("service should migrate to next-preferred server-3; active=%d", len(act))
	}
	if sf.hosts[2].Epoch() <= epochBefore {
		t.Fatalf("epoch must increase on migration: %d -> %d", epochBefore, sf.hosts[2].Epoch())
	}
}

func TestMigrationBackOnPreferredRejoin(t *testing.T) {
	sf := newSingletonFixture(t, 2, singleton.Config{
		Service:   "q",
		Preferred: []string{"server-1", "server-2"},
	})
	sf.startAll(t)
	sf.settle(4)
	if !sf.hosts[0].Active() {
		t.Fatal("server-1 should own initially")
	}

	sf.f.Crash("server-1")
	sf.hosts[0].Stop()
	sf.settle(12)
	if !sf.hosts[1].Active() {
		t.Fatal("server-2 should take over")
	}

	// server-1 comes back: the service migrates home ("keeps it on the
	// most-preferred server that is currently active").
	sf.f.Restart("server-1")
	sf.hosts[0] = singleton.NewHost(singleton.Config{
		Service:   "q",
		Preferred: []string{"server-1", "server-2"},
	}, sf.f.Servers[0].Member, sf.f.Servers[0].Registry, sf.tr.service("server-1"),
		sf.f.Servers[2].Endpoint.Addr())
	sf.hosts[0].Start()
	t.Cleanup(sf.hosts[0].Stop)
	sf.settle(12)

	if !sf.hosts[0].Active() {
		t.Fatal("service did not migrate back to most-preferred server-1")
	}
	if sf.hosts[1].Active() {
		t.Fatal("old owner still active after handoff")
	}
}

func TestAtMostOneActiveAlways(t *testing.T) {
	sf := newSingletonFixture(t, 4, singleton.Config{Service: "q"})
	sf.startAll(t)
	for round := 0; round < 40; round++ {
		sf.f.VClock.Advance(200 * time.Millisecond)
		time.Sleep(time.Millisecond)
		if n := len(activeHosts(sf.hosts)); n > 1 {
			t.Fatalf("round %d: %d active hosts (split brain)", round, n)
		}
	}
	if len(activeHosts(sf.hosts)) != 1 {
		t.Fatal("no owner after settling")
	}
}

// TestSplitBrainFrozenOwner is the §3.4 scenario: the owner freezes (not
// dead), the lease expires, a new owner activates. The frozen server thaws
// and must refuse operations because its lease is gone — Guard enforces the
// grace-period contract.
func TestSplitBrainFrozenOwner(t *testing.T) {
	sf := newSingletonFixture(t, 3, singleton.Config{
		Service:   "q",
		Preferred: []string{"server-2", "server-3"},
	})
	sf.startAll(t)
	sf.settle(4)
	if !sf.hosts[1].Active() {
		t.Fatal("server-2 should own")
	}

	// Freeze: heartbeats stop, lease renewals fail, but the process lives.
	sf.f.Freeze("server-2")
	sf.settle(12)

	if !sf.hosts[2].Active() {
		t.Fatal("server-3 should take over the frozen owner's service")
	}
	newEpoch := sf.hosts[2].Epoch()

	// Thaw the old owner. Its lease is expired; Guard must reject work
	// immediately (before any retry window in which it could legitimately
	// re-acquire with a fresh epoch).
	sf.f.Thaw("server-2")
	err := sf.hosts[1].Guard(func() error {
		t.Fatal("frozen ex-owner executed a guarded operation")
		return nil
	})
	if err != singleton.ErrNotOwner {
		t.Fatalf("want ErrNotOwner from thawed ex-owner, got %v", err)
	}
	// And the fencing epoch of the new owner is strictly higher than any
	// grant the old owner ever saw.
	if newEpoch == 0 {
		t.Fatal("new owner has no epoch")
	}
	// Note: server-2 outranks server-3 in preference, so after thawing it
	// may legitimately re-acquire later — but only via a NEW epoch, never
	// by resuming the old one.
	sf.settle(12)
	for _, h := range activeHosts(sf.hosts) {
		if h.Epoch() < newEpoch {
			t.Fatalf("owner resumed with stale epoch %d < %d", h.Epoch(), newEpoch)
		}
	}
}

func TestGuardOnNonOwner(t *testing.T) {
	sf := newSingletonFixture(t, 2, singleton.Config{
		Service:   "q",
		Preferred: []string{"server-1"},
	})
	sf.startAll(t)
	sf.settle(4)
	if err := sf.hosts[1].Guard(func() error { return nil }); err != singleton.ErrNotOwner {
		t.Fatalf("want ErrNotOwner, got %v", err)
	}
	if err := sf.hosts[0].Guard(func() error { return nil }); err != nil {
		t.Fatalf("owner guard failed: %v", err)
	}
}

func TestStopReleasesPromptly(t *testing.T) {
	sf := newSingletonFixture(t, 2, singleton.Config{
		Service:   "q",
		Preferred: []string{"server-1", "server-2"},
	})
	sf.startAll(t)
	sf.settle(4)
	if !sf.hosts[0].Active() {
		t.Fatal("server-1 should own")
	}
	// Clean shutdown releases the lease: the successor needs no expiry
	// wait, only its rank-staggered patience (rank 1 → two retry ticks).
	sf.hosts[0].Stop()
	sf.settle(8)
	if !sf.hosts[1].Active() {
		t.Fatal("clean handoff did not happen promptly")
	}
}

// --- On-demand singletons ---------------------------------------------------

func odFixture(t *testing.T) (*simtest.Fixture, []*singleton.OnDemand, *tracker) {
	t.Helper()
	f := simtest.New(simtest.Options{Servers: 4})
	t.Cleanup(f.Stop)
	admin := f.Servers[3]
	tbl := store.New("leasedb", f.Clock)
	mgr := lease.NewManager(f.Clock, lease.AlwaysLeader(), tbl, time.Second)
	admin.Registry.Register(mgr.RMIService())
	f.Settle(2)

	tr := newTracker()
	var ods []*singleton.OnDemand
	for _, s := range f.Servers[:3] {
		server := s.Name
		od := singleton.NewOnDemand("profiles", server, f.Clock, s.Endpoint,
			func(key string) singleton.Activatable { return tr.service(server + "/" + key) },
			admin.Endpoint.Addr())
		ods = append(ods, od)
		t.Cleanup(od.Stop)
	}
	return f, ods, tr
}

func TestOnDemandActivatesLocally(t *testing.T) {
	_, ods, _ := odFixture(t)
	p, err := ods[1].Use(context.Background(), "user-42")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Local || p.Owner != "server-2" || p.Epoch == 0 {
		t.Fatalf("placement = %+v", p)
	}
	if keys := ods[1].ActiveKeys(); len(keys) != 1 || keys[0] != "user-42" {
		t.Fatalf("active keys = %v", keys)
	}
}

func TestOnDemandSecondServerSeesRemoteOwner(t *testing.T) {
	_, ods, _ := odFixture(t)
	if _, err := ods[1].Use(context.Background(), "user-42"); err != nil {
		t.Fatal(err)
	}
	p, err := ods[2].Use(context.Background(), "user-42")
	if err != nil {
		t.Fatal(err)
	}
	if p.Local || p.Owner != "server-2" {
		t.Fatalf("placement = %+v, want remote owner server-2", p)
	}
}

func TestOnDemandMigratesAfterPassivate(t *testing.T) {
	_, ods, _ := odFixture(t)
	if _, err := ods[1].Use(context.Background(), "user-42"); err != nil {
		t.Fatal(err)
	}
	if err := ods[1].Passivate(context.Background(), "user-42"); err != nil {
		t.Fatal(err)
	}
	p, err := ods[2].Use(context.Background(), "user-42")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Local || p.Owner != "server-3" {
		t.Fatalf("placement after migration = %+v", p)
	}
}

func TestOnDemandUseIsIdempotentLocally(t *testing.T) {
	_, ods, _ := odFixture(t)
	p1, err := ods[0].Use(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ods[0].Use(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("repeated Use changed placement: %+v vs %+v", p1, p2)
	}
}

// --- Partitioning ------------------------------------------------------------

func TestPartitionSetSpreadsAndRoutesStably(t *testing.T) {
	p := singleton.PartitionSet{Service: "orders-q", N: 4,
		Candidates: []string{"server-1", "server-2", "server-3"}}
	if p.PartitionService(2) != "orders-q#2" {
		t.Fatalf("name = %s", p.PartitionService(2))
	}
	// Rotation: partition i prefers candidate i mod n first.
	if got := p.PreferredFor(1)[0]; got != "server-2" {
		t.Fatalf("partition 1 prefers %s", got)
	}
	if got := p.PreferredFor(3)[0]; got != "server-1" {
		t.Fatalf("partition 3 prefers %s", got)
	}
	// Stable routing.
	for _, key := range []string{"alice", "bob", "carol"} {
		a, b := p.PartitionOf(key), p.PartitionOf(key)
		if a != b || a < 0 || a >= p.N {
			t.Fatalf("unstable or out-of-range partition for %s: %d/%d", key, a, b)
		}
	}
}

func TestPartitionedHostsActivateEachPartitionOnce(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 4})
	defer f.Stop()
	admin := f.Servers[3]
	tbl := store.New("leasedb", f.Clock)
	mgr := lease.NewManager(f.Clock, lease.AlwaysLeader(), tbl, time.Second)
	admin.Registry.Register(mgr.RMIService())
	f.Settle(2)

	p := singleton.PartitionSet{Service: "q", N: 3,
		Candidates: []string{"server-1", "server-2", "server-3"}}
	tr := newTracker()
	var all []*singleton.Host
	for _, s := range f.Servers[:3] {
		server := s.Name
		hosts := p.HostsFor(s.Member, s.Registry, func(i int) singleton.Activatable {
			return tr.service(fmt.Sprintf("%s/part%d", server, i))
		}, admin.Endpoint.Addr())
		for _, h := range hosts {
			h.Start()
			defer h.Stop()
		}
		all = append(all, hosts...)
	}
	for i := 0; i < 6; i++ {
		f.VClock.Advance(250 * time.Millisecond)
		time.Sleep(2 * time.Millisecond)
	}

	// Exactly one active host per partition, and they are spread across
	// distinct servers (rotation).
	perPartition := map[int][]string{}
	for idx, h := range all {
		if h.Active() {
			server := f.Servers[idx/p.N].Name
			perPartition[idx%p.N] = append(perPartition[idx%p.N], server)
		}
	}
	owners := map[string]bool{}
	for i := 0; i < p.N; i++ {
		if len(perPartition[i]) != 1 {
			t.Fatalf("partition %d active on %v", i, perPartition[i])
		}
		owners[perPartition[i][0]] = true
	}
	if len(owners) != 3 {
		t.Fatalf("partitions not spread: %v", perPartition)
	}
}
