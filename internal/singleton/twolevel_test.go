package singleton_test

import (
	"testing"
	"time"

	"wls/internal/consensus"
	"wls/internal/lease"
	"wls/internal/simtest"
	"wls/internal/singleton"
	"wls/internal/store"
)

// TestTwoLevelHAArchitecture wires up the full §3.4 stack exactly as the
// paper prescribes: "continuous singleton services are directly
// implemented using … some kind of distributed consensus protocol …
// these baseline services are used to bootstrap a highly-available lease
// manager which grants leases to own services."
//
// Three management servers run electors; each also runs a lease-manager
// replica gated on its elector's leadership, all sharing one persistent
// lease table. Two application servers compete for a singleton. Then the
// management leader crashes: a new leader takes over granting, and the
// singleton's owner keeps renewing without ever losing the service.
func TestTwoLevelHAArchitecture(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 5}) // 3 mgmt + 2 app
	defer f.Stop()
	mgmt, apps := f.Servers[:3], f.Servers[3:]

	// Level 1: consensus among the management servers.
	peers := map[string]string{}
	for _, s := range mgmt {
		peers[s.Name] = s.Endpoint.Addr()
	}
	var electors []*consensus.Elector
	for _, s := range mgmt {
		e := consensus.NewElector(consensus.Config{Self: s.Name, Peers: peers, Seed: 11},
			f.Clock, s.Registry)
		e.Start()
		defer e.Stop()
		electors = append(electors, e)
	}

	// Level 2: lease-manager replicas gated on leadership, over a shared
	// persistent table.
	table := store.New("leasedb", f.Clock)
	var mgrAddrs []string
	for i, s := range mgmt {
		mgr := lease.NewManager(f.Clock, electors[i], table, time.Second)
		s.Registry.Register(mgr.RMIService())
		mgr.Start()
		defer mgr.Stop()
		mgrAddrs = append(mgrAddrs, s.Endpoint.Addr())
	}

	advance := func(rounds int) {
		for i := 0; i < rounds; i++ {
			f.VClock.Advance(100 * time.Millisecond)
			time.Sleep(2 * time.Millisecond)
		}
	}
	leaderIdx := func() int {
		for i, e := range electors {
			if e.IsLeader() {
				return i
			}
		}
		return -1
	}
	// Wait for a management leader.
	for i := 0; i < 100 && leaderIdx() < 0; i++ {
		advance(2)
	}
	if leaderIdx() < 0 {
		t.Fatal("no management leader elected")
	}

	// The application tier: two candidates for one continuous singleton,
	// holders probing all three manager replicas for the current leader.
	tr := newTracker()
	var hosts []*singleton.Host
	for _, s := range apps {
		h := singleton.NewHost(singleton.Config{
			Service:       "jms-server",
			Preferred:     []string{"server-4", "server-5"},
			RetryInterval: 200 * time.Millisecond,
		}, s.Member, s.Registry, tr.service(s.Name), mgrAddrs...)
		h.Start()
		defer h.Stop()
		hosts = append(hosts, h)
	}
	for i := 0; i < 50 && !hosts[0].Active(); i++ {
		advance(2)
	}
	if !hosts[0].Active() {
		t.Fatal("singleton did not activate through the elected lease manager")
	}
	epochBefore := hosts[0].Epoch()

	// Crash the management leader. The holder's renewals will fail over
	// to whichever replica wins the next election.
	oldLeader := leaderIdx()
	f.Crash(mgmt[oldLeader].Name)
	electors[oldLeader].Stop()

	// The singleton must survive the management failover: the owner keeps
	// (or regains) the service, and no second owner ever appears.
	sawBoth := false
	ownerHeldAtEnd := false
	for i := 0; i < 150; i++ {
		advance(1)
		a0, a1 := hosts[0].Active(), hosts[1].Active()
		if a0 && a1 {
			sawBoth = true
		}
		ownerHeldAtEnd = a0 || a1
	}
	if sawBoth {
		t.Fatal("two active owners during management failover (split brain)")
	}
	if !ownerHeldAtEnd {
		t.Fatal("singleton lost across management-leader failover")
	}
	// A new management leader exists and grants are consistent with the
	// persistent table: the epoch never regressed.
	if leaderIdx() < 0 {
		t.Fatal("no new management leader")
	}
	for _, h := range hosts {
		if h.Active() && h.Epoch() < epochBefore {
			t.Fatalf("epoch regressed: %d < %d", h.Epoch(), epochBefore)
		}
	}
}
