package tx_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"wls/internal/rmi"
	"wls/internal/simtest"
	"wls/internal/tx"
)

// ledger is a tiny transactional resource: staged writes become visible at
// commit.
type ledger struct {
	mu      sync.Mutex
	staged  map[string]int // by txID
	balance int
	voteNo  bool
	done    map[string]bool
}

func newLedger() *ledger {
	return &ledger{staged: map[string]int{}, done: map[string]bool{}}
}

func (l *ledger) Add(txID string, amount int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.staged[txID] += amount
}

func (l *ledger) Prepare(txID string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.voteNo {
		return errors.New("ledger refuses")
	}
	return nil
}

func (l *ledger) Commit(txID string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done[txID] {
		return nil
	}
	l.done[txID] = true
	l.balance += l.staged[txID]
	delete(l.staged, txID)
	return nil
}

func (l *ledger) Rollback(txID string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.staged, txID)
	return nil
}

func (l *ledger) Balance() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balance
}

// distributedFixture: coordinator on server-1, participant branch on
// server-2 with a local ledger.
func distributedFixture(t *testing.T) (*simtest.Fixture, *tx.Manager, *tx.Manager, *ledger, *ledger) {
	t.Helper()
	f := simtest.New(simtest.Options{Servers: 2})
	t.Cleanup(f.Stop)
	mCoord := tx.NewManager("server-1", f.Clock, nil, f.Servers[0].Metrics)
	mPart := tx.NewManager("server-2", f.Clock, nil, f.Servers[1].Metrics)
	f.Servers[0].Registry.Register(mCoord.Service())
	f.Servers[1].Registry.Register(mPart.Service())
	f.Settle(2)
	return f, mCoord, mPart, newLedger(), newLedger()
}

func TestDistributedCommitAcrossServers(t *testing.T) {
	f, mCoord, mPart, localLedger, remoteLedger := distributedFixture(t)

	txn := mCoord.Begin(0)
	txn.Enlist("local-db", localLedger)
	localLedger.Add(txn.ID(), 10)

	// The participant enlists its ledger in a branch for the foreign txID
	// (this is what a server does when an InvokeTx arrives), and the
	// coordinator enlists the remote branch.
	mPart.Branch(txn.ID()).Enlist("remote-db", remoteLedger)
	remoteLedger.Add(txn.ID(), 32)
	txn.Enlist("branch@server-2", tx.NewRemoteBranch(f.Servers[0].Endpoint, f.Servers[1].Endpoint.Addr()))
	txn.TouchServer("server-2")

	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if localLedger.Balance() != 10 || remoteLedger.Balance() != 32 {
		t.Fatalf("balances = %d / %d", localLedger.Balance(), remoteLedger.Balance())
	}
	if !contains(txn.Servers(), "server-2") {
		t.Fatal("tx did not record server-2")
	}
}

func TestDistributedAbortWhenRemoteVotesNo(t *testing.T) {
	f, mCoord, mPart, localLedger, remoteLedger := distributedFixture(t)
	remoteLedger.voteNo = true

	txn := mCoord.Begin(0)
	txn.Enlist("local-db", localLedger)
	localLedger.Add(txn.ID(), 10)
	mPart.Branch(txn.ID()).Enlist("remote-db", remoteLedger)
	remoteLedger.Add(txn.ID(), 32)
	txn.Enlist("branch@server-2", tx.NewRemoteBranch(f.Servers[0].Endpoint, f.Servers[1].Endpoint.Addr()))

	if err := txn.Commit(); !errors.Is(err, tx.ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	if localLedger.Balance() != 0 || remoteLedger.Balance() != 0 {
		t.Fatalf("atomicity violated: %d / %d", localLedger.Balance(), remoteLedger.Balance())
	}
	if mPart.HasBranch(txn.ID()) {
		t.Fatal("participant branch not cleaned up after rollback")
	}
}

func TestDistributedAbortWhenParticipantUnreachable(t *testing.T) {
	f, mCoord, mPart, localLedger, remoteLedger := distributedFixture(t)

	txn := mCoord.Begin(0)
	txn.Enlist("local-db", localLedger)
	localLedger.Add(txn.ID(), 10)
	mPart.Branch(txn.ID()).Enlist("remote-db", remoteLedger)
	txn.Enlist("branch@server-2", tx.NewRemoteBranch(f.Servers[0].Endpoint, f.Servers[1].Endpoint.Addr()))

	f.Crash("server-2")
	if err := txn.Commit(); !errors.Is(err, tx.ErrAborted) {
		t.Fatalf("want ErrAborted when participant is down, got %v", err)
	}
	if localLedger.Balance() != 0 {
		t.Fatalf("local effects leaked: %d", localLedger.Balance())
	}
}

func TestBranchPrepareFailureIdentifiesResource(t *testing.T) {
	_, _, mPart, _, remoteLedger := distributedFixture(t)
	remoteLedger.voteNo = true
	b := mPart.Branch("t-1")
	b.Enlist("remote-db", remoteLedger)
	err := b.Prepare("t-1")
	if err == nil {
		t.Fatal("want prepare error")
	}
}

func TestRemoteBranchAgainstMissingService(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	f.Settle(2)
	// server-2 has no wls.tx service registered.
	rb := tx.NewRemoteBranch(f.Servers[0].Endpoint, f.Servers[1].Endpoint.Addr())
	if err := rb.Prepare("t-9"); err == nil {
		t.Fatal("prepare against missing service should fail (vote no)")
	}
}

func TestTxServiceCommitIsIdempotent(t *testing.T) {
	f, _, mPart, _, remoteLedger := distributedFixture(t)
	id := "ext-1"
	mPart.Branch(id).Enlist("remote-db", remoteLedger)
	remoteLedger.Add(id, 5)
	rb := tx.NewRemoteBranch(f.Servers[0].Endpoint, f.Servers[1].Endpoint.Addr())
	if err := rb.Commit(id); err != nil {
		t.Fatal(err)
	}
	if err := rb.Commit(id); err != nil {
		t.Fatalf("second commit: %v", err)
	}
	if remoteLedger.Balance() != 5 {
		t.Fatalf("balance = %d, want 5 (idempotent commit)", remoteLedger.Balance())
	}
}

func TestAffinityIntegration(t *testing.T) {
	// The tx layer's Servers() feeds rmi.WithAffinity: verify the wiring
	// compiles into the expected routing behaviour.
	f, mCoord, _, _, _ := distributedFixture(t)
	for _, s := range f.Servers {
		name := s.Name
		s.Registry.Register(&rmi.Service{
			Name: "Work",
			Methods: map[string]rmi.MethodSpec{
				"do": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
					return []byte(name), nil
				}},
			},
		})
	}
	f.Settle(2)

	txn := mCoord.Begin(0)
	txn.TouchServer("server-2")
	ctx := rmi.WithAffinity(context.Background(), txn.Servers()...)
	stub := rmi.NewStub("Work", f.Servers[0].Endpoint,
		rmi.MemberView{Member: f.Servers[0].Member},
		rmi.WithPolicy(rmi.TxAffinity{Next: rmi.NewRoundRobin()}))
	for i := 0; i < 8; i++ {
		res, err := stub.InvokeTx(ctx, txn.ID(), "do", nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.ServedBy != "server-1" && res.ServedBy != "server-2" {
			t.Fatalf("tx spread to %s", res.ServedBy)
		}
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
