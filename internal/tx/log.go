package tx

import (
	"fmt"
	"io"
	"os"
	"sync"

	"wls/internal/wire"
)

// RecordKind distinguishes coordinator log entries.
type RecordKind byte

// Log record kinds.
const (
	// RecordCommit is written after all participants voted yes — the
	// transaction's durable decision point.
	RecordCommit RecordKind = iota + 1
	// RecordDone is written after phase two completed everywhere; the
	// transaction needs no recovery.
	RecordDone
)

// Record is one coordinator log entry.
type Record struct {
	TxID string
	Kind RecordKind
}

// Log persists coordinator decisions. Append must be durable before it
// returns (fsync semantics for the file implementation).
type Log interface {
	Append(r Record) error
	Records() ([]Record, error)
}

// MemLog is an in-process Log for tests and for servers that accept losing
// in-doubt transactions on crash.
type MemLog struct {
	mu   sync.Mutex
	recs []Record
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements Log.
func (l *MemLog) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, r)
	return nil
}

// Records implements Log.
func (l *MemLog) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.recs...), nil
}

// FileLog is a durable, append-only coordinator log ("tlog" in WebLogic
// terms). Each record is one wire frame; a torn final record (crash during
// append) is ignored on replay.
type FileLog struct {
	mu   sync.Mutex
	f    *os.File
	sync bool
}

// OpenFileLog opens (creating if needed) a transaction log at path. When
// syncEvery is true every append is fsynced — the durable configuration;
// benchmarks can disable it to isolate the fsync cost.
func OpenFileLog(path string, syncEvery bool) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileLog{f: f, sync: syncEvery}, nil
}

// Append implements Log.
func (l *FileLog) Append(r Record) error {
	e := wire.NewEncoder(16)
	e.Byte(byte(r.Kind))
	e.String(r.TxID)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := wire.WriteFrame(l.f, wire.Frame{Kind: wire.KindOneWay, Body: e.Bytes()}); err != nil {
		return err
	}
	if l.sync {
		return l.f.Sync()
	}
	return nil
}

// Records implements Log.
func (l *FileLog) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	defer l.f.Seek(0, io.SeekEnd) //nolint:errcheck // append mode restores position
	var out []Record
	for {
		f, err := wire.ReadFrame(l.f)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			// Torn tail from a crash mid-append: stop replay here.
			if err == io.ErrUnexpectedEOF {
				return out, nil
			}
			return out, err
		}
		d := wire.NewDecoder(f.Body)
		r := Record{Kind: RecordKind(d.Byte()), TxID: d.String()}
		if d.Err() != nil {
			return out, fmt.Errorf("tx: corrupt log record: %v", d.Err())
		}
		out = append(out, r)
	}
}

// Close closes the underlying file.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
