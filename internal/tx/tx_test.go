package tx

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"wls/internal/vclock"
)

// fakeResource records the 2PC calls it receives and can be programmed to
// vote no or fail commits.
type fakeResource struct {
	mu        sync.Mutex
	prepared  []string
	committed []string
	rolled    []string
	voteNo    bool
	failOnce  bool
}

func (r *fakeResource) Prepare(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.voteNo {
		return errors.New("vote no")
	}
	r.prepared = append(r.prepared, id)
	return nil
}

func (r *fakeResource) Commit(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failOnce {
		r.failOnce = false
		return errors.New("transient commit failure")
	}
	for _, c := range r.committed {
		if c == id {
			return nil // idempotent
		}
	}
	r.committed = append(r.committed, id)
	return nil
}

func (r *fakeResource) Rollback(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rolled = append(r.rolled, id)
	return nil
}

func (r *fakeResource) counts() (p, c, rb int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.prepared), len(r.committed), len(r.rolled)
}

func newMgr() *Manager {
	return NewManager("s1", vclock.NewVirtualAtZero(), nil, nil)
}

func TestCommitSingleResourceSkipsPrepare(t *testing.T) {
	m := newMgr()
	r := &fakeResource{}
	tx := m.Begin(0)
	if err := tx.Enlist("db", r); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	p, c, _ := r.counts()
	if p != 0 {
		t.Fatalf("single-resource commit ran prepare (%d); want 1PC", p)
	}
	if c != 1 {
		t.Fatalf("committed %d, want 1", c)
	}
	if m.Metrics().Counter("tx.1pc").Value() != 1 || m.Metrics().Counter("tx.2pc").Value() != 0 {
		t.Fatal("1PC metric not recorded")
	}
}

func TestCommitTwoResourcesRuns2PC(t *testing.T) {
	m := newMgr()
	r1, r2 := &fakeResource{}, &fakeResource{}
	tx := m.Begin(0)
	tx.Enlist("db", r1)
	tx.Enlist("jms", r2)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i, r := range []*fakeResource{r1, r2} {
		p, c, _ := r.counts()
		if p != 1 || c != 1 {
			t.Fatalf("resource %d: prepared=%d committed=%d", i, p, c)
		}
	}
	if m.Metrics().Counter("tx.2pc").Value() != 1 {
		t.Fatal("2PC metric not recorded")
	}
}

func TestVoteNoAbortsAll(t *testing.T) {
	m := newMgr()
	r1 := &fakeResource{}
	r2 := &fakeResource{voteNo: true}
	tx := m.Begin(0)
	tx.Enlist("a", r1)
	tx.Enlist("b", r2)
	err := tx.Commit()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	_, c1, rb1 := r1.counts()
	if c1 != 0 || rb1 != 1 {
		t.Fatalf("r1 committed=%d rolled=%d, want 0/1", c1, rb1)
	}
	if tx.State() != StateAborted {
		t.Fatalf("state = %v", tx.State())
	}
}

func TestRollback(t *testing.T) {
	m := newMgr()
	r := &fakeResource{}
	tx := m.Begin(0)
	tx.Enlist("db", r)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	_, c, rb := r.counts()
	if c != 0 || rb != 1 {
		t.Fatalf("committed=%d rolled=%d", c, rb)
	}
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("commit after rollback: %v", err)
	}
}

func TestEnlistDeduplicates(t *testing.T) {
	m := newMgr()
	r := &fakeResource{}
	tx := m.Begin(0)
	tx.Enlist("db", r)
	tx.Enlist("db", r)
	tx.Enlist("db2", &fakeResource{})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	p, c, _ := r.counts()
	if p != 1 || c != 1 {
		t.Fatalf("dedup failed: prepared=%d committed=%d", p, c)
	}
}

func TestEnlistAfterCompletionFails(t *testing.T) {
	m := newMgr()
	tx := m.Begin(0)
	tx.Commit()
	if err := tx.Enlist("late", &fakeResource{}); !errors.Is(err, ErrNotActive) {
		t.Fatalf("want ErrNotActive, got %v", err)
	}
}

func TestTimeoutRollsBack(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m := NewManager("s1", clk, nil, nil)
	r := &fakeResource{}
	tx := m.Begin(time.Second)
	tx.Enlist("db", r)
	clk.Advance(2 * time.Second)
	if tx.State() != StateAborted {
		t.Fatalf("state = %v, want aborted", tx.State())
	}
	if err := tx.Commit(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	_, _, rb := r.counts()
	if rb != 1 {
		t.Fatalf("rolled = %d", rb)
	}
}

func TestCommitCancelsTimeout(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m := NewManager("s1", clk, nil, nil)
	tx := m.Begin(time.Second)
	tx.Enlist("db", &fakeResource{})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second) // timer must not fire / corrupt state
	if tx.State() != StateCommitted {
		t.Fatalf("state = %v", tx.State())
	}
}

func TestBeforeCompletionErrorAborts(t *testing.T) {
	m := newMgr()
	r := &fakeResource{}
	tx := m.Begin(0)
	tx.Enlist("db", r)
	tx.BeforeCompletion(func() error { return errors.New("dirty flush failed") })
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	p, _, rb := r.counts()
	if p != 0 || rb != 1 {
		t.Fatalf("prepared=%d rolled=%d", p, rb)
	}
}

func TestAfterCompletionObservesOutcome(t *testing.T) {
	m := newMgr()
	var outcomes []bool
	tx := m.Begin(0)
	tx.Enlist("db", &fakeResource{})
	tx.AfterCompletion(func(ok bool) { outcomes = append(outcomes, ok) })
	tx.Commit()

	tx2 := m.Begin(0)
	tx2.Enlist("db", &fakeResource{})
	tx2.AfterCompletion(func(ok bool) { outcomes = append(outcomes, ok) })
	tx2.Rollback()

	if len(outcomes) != 2 || !outcomes[0] || outcomes[1] {
		t.Fatalf("outcomes = %v, want [true false]", outcomes)
	}
}

func TestTouchServersAndAffinity(t *testing.T) {
	m := newMgr()
	tx := m.Begin(0)
	tx.TouchServer("s2")
	tx.TouchServer("s2")
	tx.TouchServer("s3")
	got := tx.Servers()
	if len(got) != 3 { // s1 (coordinator) + s2 + s3
		t.Fatalf("servers = %v", got)
	}
}

func TestLookupAndFinish(t *testing.T) {
	m := newMgr()
	tx := m.Begin(0)
	if _, ok := m.Lookup(tx.ID()); !ok {
		t.Fatal("active tx not found")
	}
	tx.Enlist("db", &fakeResource{})
	tx.Commit()
	if _, ok := m.Lookup(tx.ID()); ok {
		t.Fatal("finished tx still listed")
	}
}

func TestCommitIdempotent(t *testing.T) {
	m := newMgr()
	r := &fakeResource{}
	tx := m.Begin(0)
	tx.Enlist("db", r)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("second commit: %v", err)
	}
	_, c, _ := r.counts()
	if c != 1 {
		t.Fatalf("committed %d times", c)
	}
}

// TestAtomicityProperty: for any mix of yes/no voters, either every
// resource commits or every resource rolls back.
func TestAtomicityProperty(t *testing.T) {
	f := func(votes []bool) bool {
		if len(votes) == 0 {
			return true
		}
		m := newMgr()
		tx := m.Begin(0)
		resources := make([]*fakeResource, len(votes))
		for i, yes := range votes {
			resources[i] = &fakeResource{voteNo: !yes}
			tx.Enlist(fmt.Sprintf("r%d", i), resources[i])
		}
		err := tx.Commit()
		committed := err == nil
		for _, r := range resources {
			_, c, _ := r.counts()
			if committed && c != 1 {
				return false
			}
			if !committed && c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Log & recovery -------------------------------------------------------

func TestMemLogRoundTrip(t *testing.T) {
	l := NewMemLog()
	l.Append(Record{TxID: "a", Kind: RecordCommit})
	l.Append(Record{TxID: "a", Kind: RecordDone})
	recs, err := l.Records()
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

func TestFileLogRoundTripAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tlog")
	l, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{TxID: "tx-1", Kind: RecordCommit})
	l.Append(Record{TxID: "tx-1", Kind: RecordDone})
	l.Append(Record{TxID: "tx-2", Kind: RecordCommit})
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].TxID != "tx-2" || recs[2].Kind != RecordCommit {
		t.Fatalf("recs = %+v", recs)
	}
	// Appending after Records (which seeks) must still work.
	if err := l.Append(Record{TxID: "tx-3", Kind: RecordCommit}); err != nil {
		t.Fatal(err)
	}
	recs, _ = l.Records()
	if len(recs) != 4 {
		t.Fatalf("after reseek append: %d records", len(recs))
	}
	l.Close()

	// Simulate a torn tail: truncate the file mid-record.
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs2, err := l2.Records()
	if err != nil || len(recs2) != 4 {
		t.Fatalf("reopen: recs=%d err=%v", len(recs2), err)
	}
}

func TestRecoveryRecommitsInDoubt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tlog")
	log1, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtualAtZero()
	m1 := NewManager("s1", clk, log1, nil)

	// r2 fails its first commit: the tx ends with a commit record but a
	// resource in doubt.
	r1 := &fakeResource{}
	r2 := &fakeResource{failOnce: true}
	tx := m1.Begin(0)
	tx.Enlist("a", r1)
	tx.Enlist("b", r2)
	if err := tx.Commit(); err == nil {
		t.Fatal("expected in-doubt warning error")
	}
	txID := tx.ID()
	log1.Close()

	// "Restart": a new manager on the same log recovers.
	log2, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	m2 := NewManager("s1", clk, log2, nil)
	recovered, err := m2.Recover(map[string]Resource{"a": r1, "b": r2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != txID {
		t.Fatalf("recovered = %v, want [%s]", recovered, txID)
	}
	_, c2, _ := r2.counts()
	if c2 != 1 {
		t.Fatalf("r2 committed = %d after recovery, want 1", c2)
	}
	// A second recovery finds nothing in doubt.
	recovered, err = m2.Recover(map[string]Resource{"a": r1, "b": r2})
	if err != nil || len(recovered) != 0 {
		t.Fatalf("second recovery: %v %v", recovered, err)
	}
}

func TestConcurrentTransactions(t *testing.T) {
	m := newMgr()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := m.Begin(0)
			tx.Enlist("a", &fakeResource{})
			tx.Enlist("b", &fakeResource{})
			if err := tx.Commit(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := m.Metrics().Counter("tx.committed").Value(); got != 32 {
		t.Fatalf("committed = %d", got)
	}
}
