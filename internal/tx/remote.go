package tx

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wls/internal/rmi"
	"wls/internal/wire"
)

// ServiceName is the RMI service every server deploys to participate in
// distributed transactions coordinated elsewhere — the interposed
// transaction role that §2.3 attributes to server gateways.
const ServiceName = "wls.tx"

// Branch is the participant side of a distributed transaction on one
// server: the set of local resources enlisted under a foreign coordinator's
// transaction id.
type Branch struct {
	id string

	mu        sync.Mutex
	resources []enlisted
}

// Enlist adds a local resource to the branch (deduplicated by name).
func (b *Branch) Enlist(name string, r Resource) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.resources {
		if e.name == name {
			return
		}
	}
	b.resources = append(b.resources, enlisted{name, r})
}

func (b *Branch) snapshot() []enlisted {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]enlisted{}, b.resources...)
}

// Prepare votes for the whole branch: every local resource must vote yes.
func (b *Branch) Prepare(txID string) error {
	for _, e := range b.snapshot() {
		if err := e.r.Prepare(txID); err != nil {
			return fmt.Errorf("branch resource %s: %w", e.name, err)
		}
	}
	return nil
}

// Commit commits every local resource.
func (b *Branch) Commit(txID string) error {
	var firstErr error
	for _, e := range b.snapshot() {
		if err := e.r.Commit(txID); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Rollback rolls back every local resource.
func (b *Branch) Rollback(txID string) error {
	var firstErr error
	for _, e := range b.snapshot() {
		if err := e.r.Rollback(txID); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Branch returns (creating on first use) the participant branch for a
// foreign transaction id. Server-side request handlers call this when an
// inbound invocation carries a TxID that this server does not coordinate.
func (m *Manager) Branch(txID string) *Branch {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.branches == nil {
		m.branches = make(map[string]*Branch)
	}
	b, ok := m.branches[txID]
	if !ok {
		b = &Branch{id: txID}
		m.branches[txID] = b
	}
	return b
}

// HasBranch reports whether a branch exists for txID.
func (m *Manager) HasBranch(txID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.branches[txID]
	return ok
}

func (m *Manager) removeBranch(txID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.branches, txID)
}

// Service exposes this manager's branches over RMI so remote coordinators
// can drive 2PC against this server.
func (m *Manager) Service() *rmi.Service {
	txIDOf := func(c *rmi.Call) string {
		d := wire.NewDecoder(c.Args)
		return d.String()
	}
	return &rmi.Service{
		Name:   ServiceName,
		System: true,
		Methods: map[string]rmi.MethodSpec{
			"prepare": {Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
				id := txIDOf(c)
				if err := m.Branch(id).Prepare(id); err != nil {
					return nil, &rmi.AppError{Msg: err.Error()} // no vote
				}
				return nil, nil
			}},
			// Commit and rollback are idempotent by the Resource contract,
			// so recovery may safely re-drive them.
			"commit": {Idempotent: true, Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
				id := txIDOf(c)
				err := m.Branch(id).Commit(id)
				m.removeBranch(id)
				return nil, err
			}},
			"rollback": {Idempotent: true, Handler: func(ctx context.Context, c *rmi.Call) ([]byte, error) {
				id := txIDOf(c)
				err := m.Branch(id).Rollback(id)
				m.removeBranch(id)
				return nil, err
			}},
		},
	}
}

// RemoteBranch is the coordinator-side Resource representing a branch on
// another server.
type RemoteBranch struct {
	stub *rmi.Stub
	// Timeout bounds each 2PC message exchange.
	Timeout time.Duration
}

// NewRemoteBranch returns a Resource that drives the wls.tx service on the
// participant at addr through the given node.
func NewRemoteBranch(node rmi.Node, addr string) *RemoteBranch {
	return &RemoteBranch{
		stub:    rmi.NewStub(ServiceName, node, rmi.StaticView(addr)),
		Timeout: 5 * time.Second,
	}
}

func (r *RemoteBranch) call(ctx context.Context, method, txID string) error {
	e := wire.NewEncoder(32)
	e.String(txID)
	ctx, cancel := context.WithTimeout(ctx, r.Timeout)
	defer cancel()
	_, err := r.stub.Invoke(ctx, method, e.Bytes())
	return err
}

// Prepare implements Resource.
func (r *RemoteBranch) Prepare(txID string) error {
	return r.call(context.Background(), "prepare", txID)
}

// Commit implements Resource.
func (r *RemoteBranch) Commit(txID string) error {
	return r.call(context.Background(), "commit", txID)
}

// Rollback implements Resource.
func (r *RemoteBranch) Rollback(txID string) error {
	return r.call(context.Background(), "rollback", txID)
}

// PrepareCtx, CommitCtx, and RollbackCtx implement ContextResource: a
// traced coordinator hands each 2PC message its phase-span context, so
// the message is recorded as an RMI hop onto the participant.
func (r *RemoteBranch) PrepareCtx(ctx context.Context, txID string) error {
	return r.call(ctx, "prepare", txID)
}

// CommitCtx implements ContextResource.
func (r *RemoteBranch) CommitCtx(ctx context.Context, txID string) error {
	return r.call(ctx, "commit", txID)
}

// RollbackCtx implements ContextResource.
func (r *RemoteBranch) RollbackCtx(ctx context.Context, txID string) error {
	return r.call(ctx, "rollback", txID)
}
