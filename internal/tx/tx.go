// Package tx implements the distributed transaction infrastructure that the
// paper describes application servers extending "outward from backend
// databases": local transactions, two-phase commit across XA-style
// resources, a persistent coordinator log with recovery, and interposed
// (subordinate) branches on other servers reached over RMI.
//
// Design points taken from the paper:
//
//   - §3.1: the transaction layer records which servers a transaction has
//     touched so the RMI load balancer can "limit the spread of the
//     transaction" (see Tx.Servers and rmi.WithAffinity).
//   - §5.1: when all enlisted resources live in the same store, commit
//     degenerates to one phase — the benchmark E22 measures exactly the
//     2PC tax that co-locating message state with conversational state
//     eliminates.
//   - §2.3: gateways provide "a locus for interposed transactions"; the
//     Branch/remote-resource machinery plays that role between servers.
package tx

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wls/internal/metrics"
	"wls/internal/trace"
	"wls/internal/vclock"
)

// ContextResource is an optional extension of Resource for participants
// that forward 2PC messages to other servers (RemoteBranch): the context
// carries the phase span so the message continues the trace on the
// participant. Resources that do local work only need not implement it.
type ContextResource interface {
	PrepareCtx(ctx context.Context, txID string) error
	CommitCtx(ctx context.Context, txID string) error
	RollbackCtx(ctx context.Context, txID string) error
}

func prepareResource(ctx context.Context, r Resource, txID string) error {
	if cr, ok := r.(ContextResource); ok {
		return cr.PrepareCtx(ctx, txID)
	}
	return r.Prepare(txID)
}

func commitResource(ctx context.Context, r Resource, txID string) error {
	if cr, ok := r.(ContextResource); ok {
		return cr.CommitCtx(ctx, txID)
	}
	return r.Commit(txID)
}

func rollbackResource(ctx context.Context, r Resource, txID string) error {
	if cr, ok := r.(ContextResource); ok {
		return cr.RollbackCtx(ctx, txID)
	}
	return r.Rollback(txID)
}

// Resource is an XA-style transaction participant.
type Resource interface {
	// Prepare must durably stage the transaction's effects and vote. A nil
	// return is a yes vote; any error is a no vote.
	Prepare(txID string) error
	// Commit makes the staged effects visible. Commit must succeed
	// eventually once Prepare voted yes; the coordinator retries it during
	// recovery.
	Commit(txID string) error
	// Rollback discards staged effects.
	Rollback(txID string) error
}

// State is a transaction's lifecycle position.
type State int

// Transaction states.
const (
	StateActive State = iota
	StatePreparing
	StateCommitted
	StateAborted
)

func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StatePreparing:
		return "preparing"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Errors.
var (
	// ErrAborted is returned by Commit when the transaction rolled back.
	ErrAborted = errors.New("tx: transaction aborted")
	// ErrNotActive is returned when operating on a finished transaction.
	ErrNotActive = errors.New("tx: transaction not active")
	// ErrTimeout marks transactions rolled back by their deadline.
	ErrTimeout = errors.New("tx: transaction timed out")
)

// Manager coordinates transactions for one server.
type Manager struct {
	server string
	clock  vclock.Clock
	log    Log
	reg    *metrics.Registry

	// mu guards the transaction tables; state transitions annotate the
	// per-transaction trace span while it is held.
	//
	//wls:lockorder tx.Manager.mu<trace.Span.mu
	mu       sync.Mutex
	nextID   uint64
	active   map[string]*Tx
	branches map[string]*Branch
}

// NewManager creates a manager for the named server. log may be nil, in
// which case an in-memory log is used (recovery then only works within the
// process lifetime).
func NewManager(server string, clock vclock.Clock, log Log, reg *metrics.Registry) *Manager {
	if log == nil {
		log = NewMemLog()
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Manager{
		server: server,
		clock:  clock,
		log:    log,
		reg:    reg,
		active: make(map[string]*Tx),
	}
}

// Begin starts a transaction coordinated by this server. A non-zero
// timeout schedules automatic rollback.
func (m *Manager) Begin(timeout time.Duration) *Tx {
	return m.BeginCtx(context.Background(), timeout)
}

// BeginCtx is Begin with a caller context. When ctx carries a trace span,
// the transaction runs under a child span and each 2PC phase message
// (prepare/commit/rollback per resource) becomes its own child — including
// the interposed branches driven over RMI, which continue the trace on the
// participant server.
func (m *Manager) BeginCtx(ctx context.Context, timeout time.Duration) *Tx {
	m.mu.Lock()
	m.nextID++
	id := fmt.Sprintf("%s-tx-%d", m.server, m.nextID)
	t := &Tx{
		id:      id,
		mgr:     m,
		ctx:     ctx,
		servers: map[string]bool{m.server: true},
		done:    make(chan struct{}),
	}
	if parent := trace.FromContext(ctx); parent != nil {
		t.ctx, t.span = parent.NewChild(ctx, "tx "+id, trace.KindTx)
		t.span.Annotate("coordinator", m.server)
	}
	m.active[id] = t
	m.mu.Unlock()

	if timeout > 0 {
		// The timer field is read by Commit/Rollback on other goroutines,
		// and the callback can fire (via a concurrent clock Advance) before
		// Begin returns — both require the assignment to happen under t.mu.
		t.mu.Lock()
		t.timer = m.clock.AfterFunc(timeout, func() {
			t.mu.Lock()
			active := t.state == StateActive
			t.mu.Unlock()
			if active {
				t.timedOut.Store(true)
				_ = t.Rollback()
			}
		})
		t.mu.Unlock()
	}
	return t
}

// Lookup returns the in-flight transaction with the given id.
func (m *Manager) Lookup(id string) (*Tx, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.active[id]
	return t, ok
}

func (m *Manager) finish(t *Tx) {
	m.mu.Lock()
	delete(m.active, t.id)
	m.mu.Unlock()
}

// Metrics returns the manager's metric registry.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Tx is one transaction, coordinated by the server that began it.
type Tx struct {
	id   string
	mgr  *Manager
	ctx  context.Context // from BeginCtx; carries span when traced
	span *trace.Span     // nil unless BeginCtx found a parent span

	mu        sync.Mutex
	state     State
	resources []enlisted
	servers   map[string]bool
	before    []func() error
	after     []func(committed bool)
	timer     vclock.Timer
	timedOut  atomicBool
	done      chan struct{} // closed when the state becomes terminal
}

type enlisted struct {
	name string
	r    Resource
}

// atomicBool avoids importing sync/atomic for one flag with CAS semantics.
type atomicBool struct {
	mu sync.Mutex
	v  bool
}

func (b *atomicBool) Store(v bool) { b.mu.Lock(); b.v = v; b.mu.Unlock() }
func (b *atomicBool) Load() bool   { b.mu.Lock(); defer b.mu.Unlock(); return b.v }

// ID returns the transaction identifier.
func (t *Tx) ID() string { return t.id }

// State returns the current state.
func (t *Tx) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Enlist adds a resource under a unique name. Enlisting the same name
// twice is a no-op, so a resource touched repeatedly joins once.
func (t *Tx) Enlist(name string, r Resource) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateActive {
		return ErrNotActive
	}
	for _, e := range t.resources {
		if e.name == name {
			return nil
		}
	}
	t.resources = append(t.resources, enlisted{name, r})
	return nil
}

// TouchServer records that the transaction did work on the named server,
// feeding the RMI affinity policy.
func (t *Tx) TouchServer(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.servers[name] = true
}

// Servers lists the servers this transaction has touched.
func (t *Tx) Servers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.servers))
	for s := range t.servers {
		out = append(out, s)
	}
	return out
}

// BeforeCompletion registers a callback run before the prepare phase (the
// JTA Synchronization.beforeCompletion hook); an error aborts the commit.
// The EJB container uses this to flush dirty entity-bean state, and
// stateful-session replication uses it to ship its delta at the
// transaction boundary (§3.2).
func (t *Tx) BeforeCompletion(fn func() error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.before = append(t.before, fn)
}

// AfterCompletion registers a callback run once the outcome is decided.
// The EJB container uses it to broadcast cache-flush signals after commits
// that contained updates (§3.3).
func (t *Tx) AfterCompletion(fn func(committed bool)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.after = append(t.after, fn)
}

// phaseSpan returns the context a 2PC message for one resource should
// carry, opening a per-phase child span when the transaction is traced.
// The caller must Finish the returned span (nil when untraced; Span
// methods are nil-safe).
func (t *Tx) phaseSpan(verb, res string) (context.Context, *trace.Span) {
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if t.span == nil {
		return ctx, nil
	}
	sp := t.span.Child("tx."+verb+" "+res, trace.KindTx)
	return trace.ContextWith(ctx, sp), sp
}

// waitOutcome blocks until the transaction reaches a terminal state and
// reports the actual outcome. A caller that lost the race for the
// Active→Preparing transition (e.g. Commit racing the timeout rollback, or
// two concurrent Commits) must not guess: the winning path may still commit
// or abort, and the loser's return value has to match reality.
func (t *Tx) waitOutcome() error {
	<-t.done
	t.mu.Lock()
	st := t.state
	t.mu.Unlock()
	if st == StateCommitted {
		return nil
	}
	if t.timedOut.Load() {
		return ErrTimeout
	}
	return ErrAborted
}

// Commit drives the transaction to completion: beforeCompletion hooks,
// prepare (skipped for a single resource — the one-phase optimization),
// a durable commit record, then commit on every resource.
func (t *Tx) Commit() error {
	t.mu.Lock()
	if t.state != StateActive {
		t.mu.Unlock()
		return t.waitOutcome()
	}
	before := append([]func() error{}, t.before...)
	timer := t.timer
	t.mu.Unlock()

	if timer != nil {
		timer.Stop()
	}

	// JTA ordering: beforeCompletion runs while the transaction is still
	// active, so hooks (e.g. the EJB container flushing dirty entity
	// state) may enlist additional resources.
	for _, fn := range before {
		if err := fn(); err != nil {
			t.mu.Lock()
			if t.state != StateActive { // a concurrent path owns the outcome
				t.mu.Unlock()
				return t.waitOutcome()
			}
			resources := append([]enlisted{}, t.resources...)
			t.state = StatePreparing
			t.mu.Unlock()
			t.abort(resources, false)
			return fmt.Errorf("%w: beforeCompletion: %v", ErrAborted, err)
		}
	}

	t.mu.Lock()
	if t.state != StateActive { // a hook or a concurrent path finished it
		t.mu.Unlock()
		return t.waitOutcome()
	}
	t.state = StatePreparing
	resources := append([]enlisted{}, t.resources...)
	t.mu.Unlock()

	m := t.mgr
	switch {
	case len(resources) > 1:
		// Phase 1: prepare.
		m.reg.Counter("tx.2pc").Inc()
		t.span.Annotate("mode", "2pc")
		for _, e := range resources {
			pctx, sp := t.phaseSpan("prepare", e.name)
			err := prepareResource(pctx, e.r, t.id)
			sp.SetError(err)
			sp.Finish()
			if err != nil {
				// Roll back everything, including already-prepared ones.
				t.abort(resources, true)
				return fmt.Errorf("%w: %s voted no: %v", ErrAborted, e.name, err)
			}
		}
		// Decision point: durably record the commit.
		if err := m.log.Append(Record{TxID: t.id, Kind: RecordCommit}); err != nil {
			t.abort(resources, true)
			return fmt.Errorf("%w: commit record: %v", ErrAborted, err)
		}
	case len(resources) == 1:
		// One-phase optimization: a single resource decides the outcome
		// itself, so a commit failure here is an abort, not an in-doubt
		// state — no decision was ever logged.
		m.reg.Counter("tx.1pc").Inc()
		t.span.Annotate("mode", "1pc")
		cctx, sp := t.phaseSpan("commit", resources[0].name)
		err := commitResource(cctx, resources[0].r, t.id)
		sp.SetError(err)
		sp.Finish()
		if err != nil {
			t.abort(resources, false)
			return fmt.Errorf("%w: %v", ErrAborted, err)
		}
		t.complete()
		return nil
	default:
		// No resources enlisted: nothing to prepare or commit. This is not
		// a one-phase commit; count it apart so the 1pc/2pc ratio stays an
		// honest measure of the co-location optimization (§5.1).
		m.reg.Counter("tx.0pc").Inc()
		t.span.Annotate("mode", "0pc")
	}

	// Phase 2: commit every resource. After the decision is logged,
	// failures here are retried by recovery, not reported as aborts.
	var firstErr error
	for _, e := range resources {
		cctx, sp := t.phaseSpan("commit", e.name)
		err := commitResource(cctx, e.r, t.id)
		sp.SetError(err)
		sp.Finish()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// The done record may only be written once every resource committed;
	// otherwise the transaction must stay in doubt so Recover re-drives it.
	if len(resources) > 1 && firstErr == nil {
		_ = m.log.Append(Record{TxID: t.id, Kind: RecordDone})
	}

	t.complete()
	if firstErr != nil {
		return fmt.Errorf("tx: committed with in-doubt resource (recovery will retry): %v", firstErr)
	}
	return nil
}

// complete finalizes a committed transaction and runs after hooks.
func (t *Tx) complete() {
	t.mu.Lock()
	t.state = StateCommitted
	after := append([]func(bool){}, t.after...)
	close(t.done)
	t.mu.Unlock()
	t.mgr.finish(t)
	t.mgr.reg.Counter("tx.committed").Inc()
	if t.span != nil {
		t.span.Annotate("outcome", "committed")
		t.span.Finish()
	}
	for _, fn := range after {
		fn(true)
	}
}

// Rollback aborts the transaction.
func (t *Tx) Rollback() error {
	t.mu.Lock()
	if t.state != StateActive {
		t.mu.Unlock()
		return ErrNotActive
	}
	t.state = StatePreparing
	resources := append([]enlisted{}, t.resources...)
	timer := t.timer
	t.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	t.abort(resources, false)
	return nil
}

func (t *Tx) abort(resources []enlisted, prepared bool) {
	for _, e := range resources {
		rctx, sp := t.phaseSpan("rollback", e.name)
		sp.SetError(rollbackResource(rctx, e.r, t.id))
		sp.Finish()
	}
	t.mu.Lock()
	t.state = StateAborted
	after := append([]func(bool){}, t.after...)
	close(t.done)
	t.mu.Unlock()
	t.mgr.finish(t)
	t.mgr.reg.Counter("tx.aborted").Inc()
	if t.span != nil {
		t.span.Annotate("outcome", "aborted")
		t.span.Finish()
	}
	for _, fn := range after {
		fn(false)
	}
}

// Recover replays the coordinator log: transactions with a commit record
// but no done record are re-committed against the resources supplied by
// name. It returns the ids it re-committed.
func (m *Manager) Recover(resources map[string]Resource) ([]string, error) {
	recs, err := m.log.Records()
	if err != nil {
		return nil, err
	}
	inDoubt := map[string]bool{}
	for _, r := range recs {
		switch r.Kind {
		case RecordCommit:
			inDoubt[r.TxID] = true
		case RecordDone:
			delete(inDoubt, r.TxID)
		}
	}
	var done []string
	for id := range inDoubt {
		for _, r := range resources {
			_ = r.Commit(id) // commit must be idempotent for recovery
		}
		if err := m.log.Append(Record{TxID: id, Kind: RecordDone}); err != nil {
			return done, err
		}
		done = append(done, id)
	}
	return done, nil
}
