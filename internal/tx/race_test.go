package tx

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wls/internal/metrics"
	"wls/internal/vclock"
)

// recordingResource tracks terminal outcomes per transaction for
// consistency assertions under contention.
type recordingResource struct {
	mu        sync.Mutex
	committed map[string]bool
	rolled    map[string]bool
}

func newRecordingResource() *recordingResource {
	return &recordingResource{committed: map[string]bool{}, rolled: map[string]bool{}}
}

func (r *recordingResource) Prepare(string) error { return nil }

func (r *recordingResource) Commit(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.committed[id] = true
	return nil
}

func (r *recordingResource) Rollback(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rolled[id] = true
	return nil
}

func (r *recordingResource) isCommitted(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.committed[id]
}

// TestTimeoutVsCommitRace drives Begin/Commit against a concurrently
// advancing clock so timeout rollbacks interleave with commits. Under
// -race it pins the Tx.timer synchronization (assignment in Begin and the
// reads in Commit/Rollback must agree on t.mu); semantically, whichever
// path wins, the reported outcome must match what happened at the
// resource.
func TestTimeoutVsCommitRace(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m := NewManager("race", clk, nil, nil)

	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			clk.Advance(time.Millisecond)
		}
	}()
	defer func() {
		done.Store(true)
		wg.Wait()
	}()

	// Deterministic window: arm a deadline, then give the advancing
	// goroutine real time to fire the rollback callback — which reads
	// Tx.timer — while this goroutine performs no synchronizing operation
	// after Begin's write of the same field. Under -race this is exactly
	// the Begin-assignment vs callback-read pair the fix put under t.mu.
	for i := 0; i < 10; i++ {
		tr := m.Begin(time.Millisecond)
		time.Sleep(5 * time.Millisecond)
		if err := tr.Commit(); !errors.Is(err, ErrTimeout) {
			t.Fatalf("expired tx %s: Commit = %v, want ErrTimeout", tr.ID(), err)
		}
	}

	r := newRecordingResource()
	for i := 0; i < 300; i++ {
		tr := m.Begin(time.Millisecond)
		if err := tr.Enlist("r", r); err != nil {
			continue // timed out before we got going; fine
		}
		id := tr.ID()
		switch err := tr.Commit(); {
		case err == nil:
			if !r.isCommitted(id) {
				t.Fatalf("tx %s: Commit reported success but the resource never committed", id)
			}
		case errors.Is(err, ErrTimeout) || errors.Is(err, ErrAborted):
			if r.isCommitted(id) {
				t.Fatalf("tx %s: Commit reported %v but the resource committed", id, err)
			}
		default:
			t.Fatalf("tx %s: unexpected Commit outcome %v", id, err)
		}
	}
}

// blockingResource parks Commit until released, letting a test hold a
// transaction in StatePreparing while another goroutine races Commit.
type blockingResource struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingResource) Prepare(string) error { return nil }

func (b *blockingResource) Commit(string) error {
	close(b.entered)
	<-b.release
	return nil
}

func (b *blockingResource) Rollback(string) error { return nil }

// TestConcurrentCommitReportsOutcome pins the fix for the second-caller
// lie: a Commit that loses the Active→Preparing race must wait for and
// report the actual outcome — here a successful commit — rather than
// guessing ErrAborted.
func TestConcurrentCommitReportsOutcome(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m := NewManager("race", clk, nil, nil)
	b := &blockingResource{entered: make(chan struct{}), release: make(chan struct{})}

	tr := m.Begin(0)
	if err := tr.Enlist("b", b); err != nil {
		t.Fatal(err)
	}

	firstErr := make(chan error, 1)
	go func() { firstErr <- tr.Commit() }()
	<-b.entered // first Commit is now mid-phase-2, state is Preparing

	secondErr := make(chan error, 1)
	go func() { secondErr <- tr.Commit() }()
	// Let the second caller reach Commit while the state is still
	// Preparing; only then unblock phase 2.
	time.Sleep(20 * time.Millisecond)

	close(b.release)
	if err := <-firstErr; err != nil {
		t.Fatalf("first Commit: %v", err)
	}
	if err := <-secondErr; err != nil {
		t.Fatalf("second Commit must report the real outcome (commit), got %v", err)
	}
}

// TestConcurrentCommitReportsTimeout is the abort-side twin: a Commit
// racing the deadline rollback must report ErrTimeout once the rollback
// wins, and the resource must not have committed.
func TestConcurrentCommitReportsTimeout(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	m := NewManager("race", clk, nil, nil)
	r := newRecordingResource()

	tr := m.Begin(50 * time.Millisecond)
	if err := tr.Enlist("r", r); err != nil {
		t.Fatal(err)
	}
	clk.Advance(100 * time.Millisecond) // deadline fires, rolls back
	err := tr.Commit()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Commit after timeout = %v, want ErrTimeout", err)
	}
	if r.isCommitted(tr.ID()) {
		t.Fatalf("timed-out tx committed at the resource")
	}
}

// TestZeroResourceCommitCounters pins the metrics split: a commit with no
// enlisted resources is not a one-phase commit and must be counted apart,
// keeping the 1pc/2pc ratio an honest measure of co-location.
func TestZeroResourceCommitCounters(t *testing.T) {
	clk := vclock.NewVirtualAtZero()
	reg := metrics.NewRegistry()
	m := NewManager("s", clk, nil, reg)

	if err := m.Begin(0).Commit(); err != nil {
		t.Fatalf("zero-resource commit: %v", err)
	}
	if got := reg.Counter("tx.0pc").Value(); got != 1 {
		t.Fatalf("tx.0pc = %d, want 1", got)
	}
	if got := reg.Counter("tx.1pc").Value(); got != 0 {
		t.Fatalf("tx.1pc = %d, want 0", got)
	}
	if got := reg.Counter("tx.committed").Value(); got != 1 {
		t.Fatalf("tx.committed = %d, want 1", got)
	}

	// A real single-resource commit still lands in tx.1pc.
	r := newRecordingResource()
	tr := m.Begin(0)
	if err := tr.Enlist("r", r); err != nil {
		t.Fatal(err)
	}
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("tx.1pc").Value(); got != 1 {
		t.Fatalf("tx.1pc = %d, want 1", got)
	}
	if got := reg.Counter("tx.0pc").Value(); got != 1 {
		t.Fatalf("tx.0pc = %d, want 1 (unchanged)", got)
	}
}
