package kv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"wls/internal/metrics"
	"wls/internal/wire"
)

// Options configures a durable backend.
type Options struct {
	// SyncEveryCommit fsyncs every committed batch (the durable default
	// for anything carrying transaction votes). Benchmarks disable it to
	// isolate the fsync cost.
	SyncEveryCommit bool
	// Metrics receives the backend's counters (kv.appends, kv.syncs,
	// kv.compactions, kv.checkpoints, ...). Nil allocates a private
	// registry.
	Metrics *metrics.Registry
	// FS substitutes the filesystem (crash-chaos tests). Nil means the
	// operating system.
	FS FS
	// PageSize is the WAL backend's main-file page size. 0 selects 4096.
	PageSize int
	// CheckpointBytes is the WAL size at which the WAL backend folds the
	// log into the main file automatically. 0 selects 1 MiB; negative
	// disables auto-checkpointing (explicit Checkpoint only).
	CheckpointBytes int64
}

func (o Options) fs() FS {
	if o.FS == nil {
		return OSFS()
	}
	return o.FS
}

func (o Options) metrics() *metrics.Registry {
	if o.Metrics == nil {
		return metrics.NewRegistry()
	}
	return o.Metrics
}

// Log is the append-only backend: one file, one length-prefixed frame per
// committed batch, replayed front to back on open. A torn final frame —
// the footprint of a crash mid-append — is truncated away. Compact
// rewrites the live image into a fresh file and atomically swaps it in,
// bounding growth under overwrite-heavy workloads.
type Log struct {
	path string
	opts Options
	fs   FS
	reg  *metrics.Registry

	// mu guards the file and the image; appends and counter bumps happen
	// while it is held.
	//
	//wls:lockorder kv.Log.mu<metrics.Registry.mu
	mu     sync.Mutex
	f      File
	img    *image
	closed bool
}

// frame body layout: a batch record is recBatch followed by an op stream.
const recBatch byte = 1

// encodeOps appends the op stream encoding of ops to e.
func encodeOps(e *wire.Encoder, ops []Op) {
	e.Int(len(ops))
	for _, op := range ops {
		e.Byte(byte(op.Kind))
		e.String(op.Key)
		if op.Kind == OpPut {
			e.Bytes2(op.Value)
		}
	}
}

// decodeOps reads an op stream written by encodeOps.
func decodeOps(d *wire.Decoder) ([]Op, error) {
	n := d.Int()
	if d.Err() != nil || n < 0 || n > 1<<24 {
		return nil, corruptf("op stream count %d", n)
	}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		op := Op{Kind: OpKind(d.Byte())}
		op.Key = d.String()
		switch op.Kind {
		case OpPut:
			op.Value = d.Bytes()
		case OpDelete:
		default:
			return nil, corruptf("op kind %d", op.Kind)
		}
		if d.Err() != nil {
			return nil, corruptf("op stream: %v", d.Err())
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// OpenLog opens (or creates) an append-only log store at path, replaying
// its frames into memory.
func OpenLog(path string, opts Options) (*Log, error) {
	fsys := opts.fs()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{path: path, opts: opts, fs: fsys, reg: opts.metrics(), f: f, img: newImage()}
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// replay rebuilds the image, truncating a torn tail so appends restart
// from a clean frame boundary.
func (l *Log) replay() error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReaderSize(l.f, 1<<16)
	var good int64 // offset after the last fully-valid frame
	var hdr [4]byte
	torn := false
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				torn = true
				break
			}
			return err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n < 1+8 || n > wire.MaxFrameSize {
			// A length no valid append ever wrote: garbage tail.
			torn = true
			break
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				torn = true
				break
			}
			return err
		}
		body := buf[9:] // skip frame kind + correlation id
		d := wire.NewDecoder(body)
		if d.Byte() != recBatch {
			torn = true
			break
		}
		ops, err := decodeOps(d)
		if err != nil {
			// A frame that length-checks but does not decode is a torn
			// or corrupted tail record; everything before it stands.
			torn = true
			break
		}
		l.img.apply(ops)
		good += int64(4 + n)
	}
	if torn {
		if err := l.f.Truncate(good); err != nil {
			return err
		}
	}
	if _, err := l.f.Seek(good, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// appendBatch writes one batch frame, fsyncing if configured. Caller holds
// l.mu.
func (l *Log) appendBatch(ops []Op) error {
	if l.closed {
		return ErrClosed
	}
	e := wire.AcquireEncoder()
	defer e.Release()
	e.Byte(recBatch)
	encodeOps(e, ops)
	if err := wire.WriteFrame(l.f, wire.Frame{Kind: wire.KindOneWay, Body: e.Bytes()}); err != nil {
		return err
	}
	l.reg.Counter("kv.appends").Inc()
	if l.opts.SyncEveryCommit {
		l.reg.Counter("kv.syncs").Inc()
		return l.f.Sync()
	}
	return nil
}

// Get implements Store.
func (l *Log) Get(key string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.img.get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Scan implements Store.
func (l *Log) Scan(prefix string, fn func(key string, value []byte) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.img.scan(prefix, func(k string, v []byte) bool {
		return fn(k, append([]byte(nil), v...))
	})
}

// Count implements Store.
func (l *Log) Count(prefix string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.img.count(prefix)
}

// Put implements Store.
func (l *Log) Put(key string, value []byte) error {
	return l.Apply([]Op{{Kind: OpPut, Key: key, Value: value}})
}

// Delete implements Store.
func (l *Log) Delete(key string) error {
	return l.Apply([]Op{{Kind: OpDelete, Key: key}})
}

// Apply implements Store: the whole batch is one frame, so it is atomic
// under crash — replay either sees the complete frame or truncates it.
func (l *Log) Apply(ops []Op) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendBatch(ops); err != nil {
		return err
	}
	for _, op := range ops {
		switch op.Kind {
		case OpPut:
			l.img.put(op.Key, append([]byte(nil), op.Value...))
		case OpDelete:
			l.img.del(op.Key)
		}
	}
	return nil
}

// compactChunk bounds how many encoded bytes one compaction frame carries.
const compactChunk = 256 << 10

// Compact rewrites the log so it holds exactly the live image, in key
// order, and atomically replaces the old file.
//
// The dance is deliberate about its crash windows: the snapshot is staged
// to a temporary file and fsynced; the rename is atomic; the handle used
// to write the snapshot FOLLOWS the rename (POSIX), so there is no
// re-open step that could fail and leave the store wedged on a closed
// descriptor; the parent directory is fsynced so the rename itself
// survives a crash; and only then is the old descriptor closed, with its
// error checked — an error there is reported, but the store is already on
// the new file and remains usable.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmpPath := l.path + ".compact"
	tmp, err := l.fs.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		tmp.Close()
		if rerr := l.fs.Remove(tmpPath); rerr != nil {
			return fmt.Errorf("%w (and removing %s: %v)", err, tmpPath, rerr)
		}
		return err
	}
	// Snapshot the image in key order — deterministic output, so two
	// compactions of the same state are byte-identical.
	e := wire.NewEncoder(compactChunk)
	var chunk []Op
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		e.Reset()
		e.Byte(recBatch)
		encodeOps(e, chunk)
		chunk = chunk[:0]
		return wire.WriteFrame(tmp, wire.Frame{Kind: wire.KindOneWay, Body: e.Bytes()})
	}
	var werr error
	bytes := 0
	l.img.scan("", func(k string, v []byte) bool {
		chunk = append(chunk, Op{Kind: OpPut, Key: k, Value: v})
		bytes += len(k) + len(v) + 16
		if bytes >= compactChunk {
			bytes = 0
			if werr = flush(); werr != nil {
				return false
			}
		}
		return true
	})
	if werr == nil {
		werr = flush()
	}
	if werr != nil {
		return abort(fmt.Errorf("kv: compaction write: %w", werr))
	}
	if err := tmp.Sync(); err != nil {
		return abort(err)
	}
	if err := l.fs.Rename(tmpPath, l.path); err != nil {
		return abort(err)
	}
	// The rename happened: from here on the new file is the log and the
	// store swaps onto the still-open staging handle (which followed the
	// rename), whatever the remaining steps report.
	old := l.f
	l.f = tmp
	l.reg.Counter("kv.compactions").Inc()
	// The rename is only durable once the directory entry is; fsync it.
	// And the old descriptor's close error is checked — silently dropping
	// it would hide a failing disk.
	var errs []error
	if err := l.fs.SyncDir(l.path); err != nil {
		errs = append(errs, fmt.Errorf("kv: compaction dir sync: %w", err))
	}
	if err := old.Close(); err != nil {
		errs = append(errs, fmt.Errorf("kv: closing pre-compaction log: %w", err))
	}
	return errors.Join(errs...)
}

// Size implements Sizer.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close implements Store.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
