package kv

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the durable backends use. The
// default implementation is the operating system; the crash-chaos suite
// substitutes a filesystem with a byte budget that tears the final write
// and fails everything after it, which is how "kill -9 mid-commit" becomes
// a deterministic, seeded test instead of a flaky one.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newname with oldname. An already-open
	// File handle follows the file to its new name (POSIX semantics), so
	// compaction can keep writing through the handle it staged with.
	Rename(oldname, newname string) error
	// Remove deletes a file; removing a missing file is not an error.
	Remove(name string) error
	// SyncDir fsyncs the directory containing name, making a preceding
	// Rename durable: without it a crash can lose the new directory
	// entry even though the file's blocks are on disk.
	SyncDir(name string) error
}

// File is the per-file surface: sequential reads for replay, appends for
// commits, truncation for torn tails, fsync for durability.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the operating-system filesystem, the default for every
// durable backend.
func OSFS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error {
	err := os.Remove(name)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (osFS) SyncDir(name string) error {
	d, err := os.Open(filepath.Dir(name))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
