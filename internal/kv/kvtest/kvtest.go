// Package kvtest provides crash-injection infrastructure for the kv
// backends' chaos suites. The centerpiece is CrashFS: a filesystem with a
// step budget. Every mutating operation (write, sync, truncate, rename,
// remove, directory sync) consumes one step; the operation that exhausts
// the budget "crashes" — a write lands only a prefix of its bytes (a torn
// write), any other operation fails without effect — and everything after
// it fails with ErrCrashed. Sweeping the budget from zero to the
// workload's total step count visits every crash window deterministically,
// turning "kill -9 mid-commit" into a seeded test instead of a flaky one.
//
// CrashFS also records every operation it sees, so tests can assert the
// exact syscall choreography of crash-sensitive sequences (stage, sync,
// rename, directory sync, close) rather than merely their outcome.
package kvtest

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"wls/internal/kv"
)

// ErrCrashed is returned by every operation at and after the simulated
// crash point.
var ErrCrashed = errors.New("kvtest: simulated crash")

// CrashFS wraps a kv.FS with a mutating-operation budget and an operation
// recorder. A budget below zero never crashes (pure recorder).
type CrashFS struct {
	inner kv.FS

	mu      sync.Mutex
	steps   int
	tearNum int // fraction of the crashing write that reaches the file
	tearDen int
	crashed bool
	ops     []string
	mutates int
}

// NewCrashFS wraps inner with a budget of steps mutating operations. The
// default tear fraction is 1/2: the crashing write lands half its bytes.
func NewCrashFS(inner kv.FS, steps int) *CrashFS {
	if inner == nil {
		inner = kv.OSFS()
	}
	return &CrashFS{inner: inner, steps: steps, tearNum: 1, tearDen: 2}
}

// SetTear changes the fraction (num/den) of the crashing write's bytes
// that reach the file — 0/1 tears at the frame boundary, and values close
// to 1 leave almost-complete frames for the checksum to reject.
func (c *CrashFS) SetTear(num, den int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tearNum, c.tearDen = num, den
}

// Crashed reports whether the budget has been exhausted.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// MutatingOps reports how many mutating operations have run to completion
// — run a workload with a negative budget and use this as the sweep bound.
func (c *CrashFS) MutatingOps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mutates
}

// Ops returns a copy of the recorded operation log.
func (c *CrashFS) Ops() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.ops...)
}

func (c *CrashFS) record(format string, args ...any) {
	c.ops = append(c.ops, fmt.Sprintf(format, args...))
}

// step consumes one mutating-op credit. It returns true when this
// operation is the crash point (or the crash already happened).
func (c *CrashFS) step() bool {
	if c.crashed {
		return true
	}
	if c.steps < 0 {
		c.mutates++
		return false
	}
	if c.steps == 0 {
		c.crashed = true
		return true
	}
	c.steps--
	c.mutates++
	return false
}

// OpenFile implements kv.FS. Opens are not mutating ops (a crash at the
// create is indistinguishable on disk from a crash at the first write),
// but they do fail after the crash.
func (c *CrashFS) OpenFile(name string, flag int, perm os.FileMode) (kv.File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.record("open %s %#x", name, flag)
	if c.crashed {
		return nil, ErrCrashed
	}
	f, err := c.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, name: name, f: f}, nil
}

// Rename implements kv.FS: atomic, so the crash point leaves it undone.
func (c *CrashFS) Rename(oldname, newname string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.step() {
		c.record("rename %s %s CRASH", oldname, newname)
		return ErrCrashed
	}
	c.record("rename %s %s", oldname, newname)
	return c.inner.Rename(oldname, newname)
}

// Remove implements kv.FS.
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.step() {
		c.record("remove %s CRASH", name)
		return ErrCrashed
	}
	c.record("remove %s", name)
	return c.inner.Remove(name)
}

// SyncDir implements kv.FS.
func (c *CrashFS) SyncDir(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.step() {
		c.record("syncdir %s CRASH", name)
		return ErrCrashed
	}
	c.record("syncdir %s", name)
	return c.inner.SyncDir(name)
}

// crashFile routes every file operation through the budget. The name is
// the path the file was opened under, so the recorded log distinguishes a
// staging file from the file it later replaces.
type crashFile struct {
	fs   *CrashFS
	name string
	f    kv.File
}

func (cf *crashFile) Read(p []byte) (int, error) {
	cf.fs.mu.Lock()
	crashed := cf.fs.crashed
	cf.fs.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	return cf.f.Read(p)
}

func (cf *crashFile) Write(p []byte) (int, error) {
	cf.fs.mu.Lock()
	if cf.fs.step() {
		// Torn write: a prefix of the bytes lands, then the machine dies.
		n := len(p) * cf.fs.tearNum / cf.fs.tearDen
		cf.fs.record("write %s %d/%d CRASH", cf.name, n, len(p))
		cf.fs.mu.Unlock()
		if n > 0 {
			cf.f.Write(p[:n])
		}
		return n, ErrCrashed
	}
	cf.fs.record("write %s %d", cf.name, len(p))
	cf.fs.mu.Unlock()
	return cf.f.Write(p)
}

func (cf *crashFile) Seek(offset int64, whence int) (int64, error) {
	cf.fs.mu.Lock()
	crashed := cf.fs.crashed
	cf.fs.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	return cf.f.Seek(offset, whence)
}

func (cf *crashFile) Close() error {
	cf.fs.mu.Lock()
	cf.fs.record("close %s", cf.name)
	crashed := cf.fs.crashed
	cf.fs.mu.Unlock()
	err := cf.f.Close()
	if crashed {
		return ErrCrashed
	}
	return err
}

func (cf *crashFile) Sync() error {
	cf.fs.mu.Lock()
	if cf.fs.step() {
		cf.fs.record("sync %s CRASH", cf.name)
		cf.fs.mu.Unlock()
		return ErrCrashed
	}
	cf.fs.record("sync %s", cf.name)
	cf.fs.mu.Unlock()
	return cf.f.Sync()
}

func (cf *crashFile) Truncate(size int64) error {
	cf.fs.mu.Lock()
	if cf.fs.step() {
		cf.fs.record("truncate %s %d CRASH", cf.name, size)
		cf.fs.mu.Unlock()
		return ErrCrashed
	}
	cf.fs.record("truncate %s %d", cf.name, size)
	cf.fs.mu.Unlock()
	return cf.f.Truncate(size)
}

func (cf *crashFile) Stat() (os.FileInfo, error) {
	cf.fs.mu.Lock()
	crashed := cf.fs.crashed
	cf.fs.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return cf.f.Stat()
}
