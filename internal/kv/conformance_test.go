package kv_test

// The conformance suite: one set of semantic tests that every backend —
// Mem, Log, WAL — must pass identically. Backend-specific behaviour
// (durability across reopen, compaction, checkpointing) is gated on the
// capabilities a backend declares, not on its name.

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"wls/internal/kv"
)

// backendCase describes one backend to the conformance suite.
type backendCase struct {
	name    string
	durable bool
	// open opens (or reopens) the store rooted at dir.
	open func(t *testing.T, dir string) kv.Store
}

func logPath(dir string) string { return filepath.Join(dir, "store.log") }
func walPath(dir string) string { return filepath.Join(dir, "store.db") }

func allBackends() []backendCase {
	return []backendCase{
		{
			name:    "mem",
			durable: false,
			open: func(t *testing.T, dir string) kv.Store {
				return kv.NewMem()
			},
		},
		{
			name:    "log",
			durable: true,
			open: func(t *testing.T, dir string) kv.Store {
				s, err := kv.OpenLog(logPath(dir), kv.Options{})
				if err != nil {
					t.Fatalf("OpenLog: %v", err)
				}
				return s
			},
		},
		{
			name:    "wal",
			durable: true,
			open: func(t *testing.T, dir string) kv.Store {
				s, err := kv.OpenWAL(walPath(dir), kv.Options{})
				if err != nil {
					t.Fatalf("OpenWAL: %v", err)
				}
				return s
			},
		},
	}
}

// forEachBackend runs fn once per backend as a subtest.
func forEachBackend(t *testing.T, fn func(t *testing.T, bc backendCase)) {
	for _, bc := range allBackends() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) { fn(t, bc) })
	}
}

// dump captures the full visible state of a store.
func dump(s kv.Store) map[string]string {
	out := map[string]string{}
	s.Scan("", func(k string, v []byte) bool {
		out[k] = string(v)
		return true
	})
	return out
}

func TestConformancePutGetDelete(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		s := bc.open(t, t.TempDir())
		defer s.Close()
		if _, ok := s.Get("missing"); ok {
			t.Fatalf("Get(missing) reported present")
		}
		if err := s.Put("a", []byte("1")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if v, ok := s.Get("a"); !ok || string(v) != "1" {
			t.Fatalf("Get(a) = %q, %v", v, ok)
		}
		if err := s.Put("a", []byte("2")); err != nil {
			t.Fatalf("overwrite: %v", err)
		}
		if v, _ := s.Get("a"); string(v) != "2" {
			t.Fatalf("overwrite lost: %q", v)
		}
		if err := s.Put("empty", nil); err != nil {
			t.Fatalf("Put empty value: %v", err)
		}
		if v, ok := s.Get("empty"); !ok || len(v) != 0 {
			t.Fatalf("empty value: %q, %v", v, ok)
		}
		if err := s.Delete("a"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, ok := s.Get("a"); ok {
			t.Fatalf("deleted key still present")
		}
		if err := s.Delete("never-existed"); err != nil {
			t.Fatalf("Delete of absent key: %v", err)
		}
	})
}

func TestConformanceGetCopiesOut(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		s := bc.open(t, t.TempDir())
		defer s.Close()
		if err := s.Put("k", []byte("abc")); err != nil {
			t.Fatal(err)
		}
		v, _ := s.Get("k")
		v[0] = 'X'
		if v2, _ := s.Get("k"); string(v2) != "abc" {
			t.Fatalf("mutating a Get result leaked into the store: %q", v2)
		}
	})
}

func TestConformanceScanOrderAndPrefix(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		s := bc.open(t, t.TempDir())
		defer s.Close()
		for _, k := range []string{"b/2", "a/1", "b/1", "c/1", "a/2", "b/10"} {
			if err := s.Put(k, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		var keys []string
		s.Scan("b/", func(k string, v []byte) bool {
			keys = append(keys, k)
			return true
		})
		want := []string{"b/1", "b/10", "b/2"}
		if !reflect.DeepEqual(keys, want) {
			t.Fatalf("Scan(b/) = %v, want %v", keys, want)
		}
		// Early stop.
		n := 0
		s.Scan("", func(k string, v []byte) bool {
			n++
			return n < 3
		})
		if n != 3 {
			t.Fatalf("early-stopped scan visited %d keys", n)
		}
		if got := s.Count("b/"); got != 3 {
			t.Fatalf("Count(b/) = %d", got)
		}
		if got := s.Count(""); got != 6 {
			t.Fatalf("Count() = %d", got)
		}
		if got := s.Count("zz"); got != 0 {
			t.Fatalf("Count(zz) = %d", got)
		}
	})
}

func TestConformanceApplyBatch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		s := bc.open(t, t.TempDir())
		defer s.Close()
		if err := s.Put("gone", []byte("x")); err != nil {
			t.Fatal(err)
		}
		err := s.Apply([]kv.Op{
			{Kind: kv.OpPut, Key: "a", Value: []byte("1")},
			{Kind: kv.OpPut, Key: "b", Value: []byte("2")},
			{Kind: kv.OpDelete, Key: "gone"},
			{Kind: kv.OpPut, Key: "a", Value: []byte("1b")}, // last-write-wins inside a batch
		})
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		want := map[string]string{"a": "1b", "b": "2"}
		if got := dump(s); !reflect.DeepEqual(got, want) {
			t.Fatalf("after batch: %v, want %v", got, want)
		}
	})
}

func TestConformanceClosedStoreRejectsWrites(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		s := bc.open(t, t.TempDir())
		if err := s.Put("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if err := s.Put("k2", []byte("v")); err != kv.ErrClosed {
			t.Fatalf("Put after close = %v, want ErrClosed", err)
		}
		if err := s.Delete("k"); err != kv.ErrClosed {
			t.Fatalf("Delete after close = %v, want ErrClosed", err)
		}
		if err := s.Apply([]kv.Op{{Kind: kv.OpPut, Key: "x"}}); err != kv.ErrClosed {
			t.Fatalf("Apply after close = %v, want ErrClosed", err)
		}
	})
}

func TestConformanceDurability(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		if !bc.durable {
			t.Skip("in-memory backend")
		}
		dir := t.TempDir()
		s := bc.open(t, dir)
		for i := 0; i < 50; i++ {
			if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Delete("k010"); err != nil {
			t.Fatal(err)
		}
		before := dump(s)
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		s2 := bc.open(t, dir)
		defer s2.Close()
		if got := dump(s2); !reflect.DeepEqual(got, before) {
			t.Fatalf("reopen lost state:\n got %v\nwant %v", got, before)
		}
	})
}

func TestConformanceMaintenancePreservesState(t *testing.T) {
	// Compaction (log) and checkpointing (WAL) are behaviour-preserving:
	// same visible state before, after, and across a reopen.
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		dir := t.TempDir()
		s := bc.open(t, dir)
		for i := 0; i < 200; i++ {
			if err := s.Put(fmt.Sprintf("k%03d", i%40), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10; i++ {
			if err := s.Delete(fmt.Sprintf("k%03d", i)); err != nil {
				t.Fatal(err)
			}
		}
		before := dump(s)
		ran := false
		if c, ok := s.(kv.Compacter); ok {
			if err := c.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			ran = true
		}
		if c, ok := s.(kv.Checkpointer); ok {
			if err := c.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			ran = true
		}
		if got := dump(s); !reflect.DeepEqual(got, before) {
			t.Fatalf("maintenance changed state:\n got %v\nwant %v", got, before)
		}
		if !bc.durable {
			return
		}
		if !ran {
			t.Fatalf("durable backend exposes neither Compact nor Checkpoint")
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2 := bc.open(t, dir)
		defer s2.Close()
		if got := dump(s2); !reflect.DeepEqual(got, before) {
			t.Fatalf("reopen after maintenance lost state:\n got %v\nwant %v", got, before)
		}
	})
}

func TestConformanceLargeValues(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendCase) {
		dir := t.TempDir()
		s := bc.open(t, dir)
		big := make([]byte, 64<<10)
		for i := range big {
			big[i] = byte(i * 7)
		}
		if err := s.Put("big", big); err != nil {
			t.Fatal(err)
		}
		v, ok := s.Get("big")
		if !ok || !reflect.DeepEqual(v, big) {
			t.Fatalf("large value round-trip failed (ok=%v len=%d)", ok, len(v))
		}
		if !bc.durable {
			s.Close()
			return
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2 := bc.open(t, dir)
		defer s2.Close()
		v2, ok := s2.Get("big")
		if !ok || !reflect.DeepEqual(v2, big) {
			t.Fatalf("large value lost on reopen (ok=%v len=%d)", ok, len(v2))
		}
	})
}
