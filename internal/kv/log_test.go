package kv_test

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"wls/internal/kv"
	"wls/internal/kv/kvtest"
)

func openLog(t *testing.T, dir string, opts kv.Options) *kv.Log {
	t.Helper()
	l, err := kv.OpenLog(logPath(dir), opts)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	return l
}

func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, kv.Options{})
	if err := l.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Garbage tail: a partial frame as a crash mid-append would leave.
	f, err := os.OpenFile(logPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 200, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2 := openLog(t, dir, kv.Options{})
	defer l2.Close()
	if _, ok := l2.Get("a"); !ok {
		t.Fatalf("good frame lost to torn tail")
	}
	if err := l2.Put("b", []byte("2")); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openLog(t, dir, kv.Options{})
	defer l3.Close()
	if got := dump(l3); !reflect.DeepEqual(got, map[string]string{"a": "1", "b": "2"}) {
		t.Fatalf("post-truncation append lost: %v", got)
	}
}

// TestLogCompactSyscallOrder is the regression test for the Compact
// durability protocol: stage to a temp file, fsync it, rename, fsync the
// parent directory, and only then close the old descriptor (with its
// error checked). The pre-refactor FileStore.Compact never fsynced the
// directory, reopened the renamed file (a step that can fail and wedge
// the store on a closed descriptor), and ignored the old Close error.
func TestLogCompactSyscallOrder(t *testing.T) {
	dir := t.TempDir()
	rec := kvtest.NewCrashFS(nil, -1) // pure recorder
	l, err := kv.OpenLog(logPath(dir), kv.Options{FS: rec})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	path, tmp := logPath(dir), logPath(dir)+".compact"
	wantOrder := []string{
		"open " + tmp,
		"sync " + tmp,
		"rename " + tmp + " " + path,
		"syncdir " + path,
		"close " + path, // the OLD descriptor, after the swap
	}
	ops := rec.Ops()
	i := 0
	for _, op := range ops {
		if i < len(wantOrder) && strings.HasPrefix(op, wantOrder[i]) {
			i++
		}
	}
	if i != len(wantOrder) {
		t.Fatalf("compact syscall order missing %q\nfull log:\n  %s",
			wantOrder[i], strings.Join(ops, "\n  "))
	}
	// No re-open of the main path after the rename: the staging handle
	// follows the inode.
	seenRename := false
	for _, op := range ops {
		if strings.HasPrefix(op, "rename ") {
			seenRename = true
		}
		if seenRename && strings.HasPrefix(op, "open "+path) {
			t.Fatalf("compact re-opened the main file after rename:\n  %s",
				strings.Join(ops, "\n  "))
		}
	}
	if err := l.Put("after", []byte("compact")); err != nil {
		t.Fatalf("store unusable after compact: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, kv.Options{})
	defer l2.Close()
	if _, ok := l2.Get("after"); !ok {
		t.Fatalf("post-compact append lost on reopen")
	}
	if got := l2.Count(""); got != 11 {
		t.Fatalf("reopened store has %d keys, want 11", got)
	}
}

// failDirFS fails SyncDir exactly once — the post-rename failure mode the
// old code turned into a wedged store.
type failDirFS struct {
	kv.FS
	failed bool
}

func (f *failDirFS) SyncDir(name string) error {
	if !f.failed {
		f.failed = true
		return errors.New("injected: dir sync failed")
	}
	return f.FS.SyncDir(name)
}

func TestLogCompactSurvivesPostRenameFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := &failDirFS{FS: kv.OSFS()}
	l, err := kv.OpenLog(logPath(dir), kv.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	err = l.Compact()
	if err == nil || !strings.Contains(err.Error(), "dir sync") {
		t.Fatalf("Compact error = %v, want the injected dir-sync failure", err)
	}
	// The compaction landed (rename succeeded); the store must still be
	// live on the new file, not wedged on a closed or stale descriptor.
	if err := l.Put("k2", []byte("v2")); err != nil {
		t.Fatalf("store wedged after post-rename failure: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, kv.Options{})
	defer l2.Close()
	if got := dump(l2); !reflect.DeepEqual(got, map[string]string{"k": "v", "k2": "v2"}) {
		t.Fatalf("state after recovered compact: %v", got)
	}
}

func TestLogCompactDeterministic(t *testing.T) {
	// Two compactions of the same logical state must produce byte-identical
	// files — the old implementation iterated a Go map and did not.
	build := func(dir string, keys []string) {
		l, err := kv.OpenLog(logPath(dir), kv.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if err := l.Put(k, []byte("v-"+k)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	keys := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	rev := []string{"bravo", "charlie", "echo", "alpha", "delta"}
	d1, d2 := t.TempDir(), t.TempDir()
	build(d1, keys)
	build(d2, rev)
	b1, err := os.ReadFile(logPath(d1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(logPath(d2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Fatalf("compaction output depends on insertion order (%d vs %d bytes)", len(b1), len(b2))
	}
}

func TestLogCompactShrinksFile(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, kv.Options{})
	defer l.Close()
	for i := 0; i < 500; i++ {
		if err := l.Put("hot", []byte(strings.Repeat("x", 100))); err != nil {
			t.Fatal(err)
		}
	}
	before, err := l.Size()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := l.Size()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before/10 {
		t.Fatalf("compaction barely shrank the log: %d -> %d", before, after)
	}
}
