package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"sync"

	"wls/internal/metrics"
	"wls/internal/wire"
)

// WAL is the write-ahead-log backend, modeled on SQLite's WAL design
// (stdlib only — no cgo, no SQL): committed batches append *frames* to a
// side log; a *checkpoint* folds the accumulated frames into the
// page-organized main file and resets the log; recovery loads the main
// file, then replays the log and stops at the first frame whose chained
// checksum fails — the torn-frame detector that makes a crash mid-append
// indistinguishable from a clean stop at the previous commit.
//
// On-disk layout:
//
//	<path>      main file: header page + fixed-size data pages, each page
//	            ending in a CRC-64 of its payload; the pages carry the
//	            record stream (key/value pairs in key order) of the image
//	            as of generation G.
//	<path>-wal  write-ahead log: header {magic, version, generation, salt,
//	            crc} then frames {len, seq, chained crc, op batch}. The
//	            generation ties the log to the main file it extends: a
//	            crash between "rename new main file" and "reset log"
//	            leaves a log whose generation is stale, and recovery
//	            discards it (every frame in it was checkpointed into the
//	            main file it no longer matches).
//
// Each frame's checksum chains from its predecessor's (the header's for
// the first frame), with the salt folded into the header checksum — so a
// frame surviving from an older log incarnation can never validate against
// a newer header, and a torn tail fails its own checksum.
type WAL struct {
	path    string
	walPath string
	opts    Options
	fs      FS
	reg     *metrics.Registry

	// mu guards the image, the WAL file, and the checkpoint swap.
	//
	//wls:lockorder kv.WAL.mu<metrics.Registry.mu
	mu       sync.Mutex
	wal      File
	img      *image
	closed   bool
	gen      uint64
	salt     uint64
	seq      uint64
	prevSum  uint64
	walSize  int64
	mainSize int64
	pageSize int
	ckptAt   int64 // auto-checkpoint threshold; <0 disables
}

const (
	mainMagic = "WLSKVDB1"
	walMagic  = "WLSKVWAL"
	kvVersion = 1

	mainHeaderLen = 8 + 4 + 4 + 8 + 8 + 8 + 8 // magic, version, pageSize, gen, records, payloadLen, crc
	walHeaderLen  = 8 + 4 + 8 + 8 + 8         // magic, version, gen, salt, crc
	frameHdrLen   = 4 + 8 + 8                 // payload len, seq, chained crc

	defaultPageSize    = 4096
	defaultCkptBytes   = 1 << 20
	maxWALFramePayload = wire.MaxFrameSize
)

var crcTab = crc64.MakeTable(crc64.ECMA)

// OpenWAL opens (or creates) a WAL-backed store at path. Recovery order:
// load the main file (verifying every page checksum), then replay the
// write-ahead log's frames, truncating at the first torn or corrupt one.
func OpenWAL(path string, opts Options) (*WAL, error) {
	w := &WAL{
		path:     path,
		walPath:  path + "-wal",
		opts:     opts,
		fs:       opts.fs(),
		reg:      opts.metrics(),
		img:      newImage(),
		pageSize: opts.PageSize,
		ckptAt:   opts.CheckpointBytes,
	}
	if w.pageSize == 0 {
		w.pageSize = defaultPageSize
	}
	if w.pageSize < 64 {
		return nil, fmt.Errorf("kv: page size %d too small", w.pageSize)
	}
	if w.ckptAt == 0 {
		w.ckptAt = defaultCkptBytes
	}
	if err := w.loadMain(); err != nil {
		return nil, err
	}
	if err := w.openWAL(); err != nil {
		return nil, err
	}
	return w, nil
}

// loadMain reads the page-organized main file into the image. A missing
// or empty main file is a fresh store at generation 0.
func (w *WAL) loadMain() error {
	f, err := w.fs.OpenFile(w.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	w.mainSize = st.Size()
	if st.Size() == 0 {
		w.gen = 0
		return nil
	}
	if st.Size() < int64(w.pageSize) {
		return corruptf("main file %d bytes, smaller than a header page", st.Size())
	}
	hdr := make([]byte, mainHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return err
	}
	if string(hdr[:8]) != mainMagic {
		return corruptf("main file magic %q", hdr[:8])
	}
	version := binary.BigEndian.Uint32(hdr[8:12])
	pageSize := binary.BigEndian.Uint32(hdr[12:16])
	gen := binary.BigEndian.Uint64(hdr[16:24])
	records := binary.BigEndian.Uint64(hdr[24:32])
	payloadLen := binary.BigEndian.Uint64(hdr[32:40])
	sum := binary.BigEndian.Uint64(hdr[40:48])
	if got := crc64.Checksum(hdr[:40], crcTab); got != sum {
		return corruptf("main header checksum %x != %x", got, sum)
	}
	if version != kvVersion {
		return corruptf("main file version %d", version)
	}
	if int(pageSize) != w.pageSize {
		// The file knows its own geometry; follow it.
		w.pageSize = int(pageSize)
	}
	// Skip the rest of the header page.
	if _, err := f.Seek(int64(w.pageSize), io.SeekStart); err != nil {
		return err
	}
	payloadPerPage := w.pageSize - 8
	payload := make([]byte, 0, payloadLen)
	page := make([]byte, w.pageSize)
	for remaining := int64(payloadLen); remaining > 0; {
		if _, err := io.ReadFull(f, page); err != nil {
			return corruptf("main file short page: %v", err)
		}
		body := page[:payloadPerPage]
		want := binary.BigEndian.Uint64(page[payloadPerPage:])
		if got := crc64.Checksum(body, crcTab); got != want {
			return corruptf("main page checksum %x != %x", got, want)
		}
		n := int64(payloadPerPage)
		if n > remaining {
			n = remaining
		}
		payload = append(payload, body[:n]...)
		remaining -= n
	}
	d := wire.NewDecoder(payload)
	for i := uint64(0); i < records; i++ {
		key := d.String()
		val := d.Bytes()
		if d.Err() != nil {
			return corruptf("main record stream: %v", d.Err())
		}
		w.img.put(key, val)
	}
	w.gen = gen
	return nil
}

// walHeader renders the log header for the given generation and salt.
func walHeader(gen, salt uint64) []byte {
	hdr := make([]byte, walHeaderLen)
	copy(hdr, walMagic)
	binary.BigEndian.PutUint32(hdr[8:12], kvVersion)
	binary.BigEndian.PutUint64(hdr[12:20], gen)
	binary.BigEndian.PutUint64(hdr[20:28], salt)
	binary.BigEndian.PutUint64(hdr[28:36], crc64.Checksum(hdr[:28], crcTab))
	return hdr
}

// openWAL opens the log, replays valid frames onto the image, and leaves
// the file positioned for appends. A missing, garbled, or stale-generation
// log is reset — garbled means it never carried a durable commit (the
// header is written and synced before any frame), stale means every frame
// it holds was already checkpointed into the main file.
func (w *WAL) openWAL() error {
	f, err := w.fs.OpenFile(w.walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	w.wal = f
	hdr := make([]byte, walHeaderLen)
	_, err = io.ReadFull(f, hdr)
	valid := err == nil &&
		string(hdr[:8]) == walMagic &&
		binary.BigEndian.Uint32(hdr[8:12]) == kvVersion &&
		binary.BigEndian.Uint64(hdr[28:36]) == crc64.Checksum(hdr[:28], crcTab) &&
		binary.BigEndian.Uint64(hdr[12:20]) == w.gen
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return err
	}
	if !valid {
		return w.resetWALLocked()
	}
	w.salt = binary.BigEndian.Uint64(hdr[20:28])
	w.prevSum = binary.BigEndian.Uint64(hdr[28:36])
	w.seq = 0
	good := int64(walHeaderLen)
	fh := make([]byte, frameHdrLen)
	torn := false
	for {
		if _, err := io.ReadFull(f, fh); err != nil {
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				torn = true
				break
			}
			return err
		}
		plen := binary.BigEndian.Uint32(fh[0:4])
		seq := binary.BigEndian.Uint64(fh[4:12])
		sum := binary.BigEndian.Uint64(fh[12:20])
		if plen == 0 || plen > maxWALFramePayload || seq != w.seq+1 {
			torn = true
			break
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				torn = true
				break
			}
			return err
		}
		if frameSum(w.prevSum, seq, payload) != sum {
			torn = true
			break
		}
		ops, err := decodeOps(wire.NewDecoder(payload))
		if err != nil {
			torn = true
			break
		}
		w.img.apply(ops)
		w.seq = seq
		w.prevSum = sum
		good += int64(frameHdrLen) + int64(plen)
	}
	if torn {
		if err := f.Truncate(good); err != nil {
			return err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return err
	}
	w.walSize = good
	return nil
}

// resetWALLocked truncates the log and writes a fresh header tied to the
// current main-file generation. Caller holds w.mu (or is in Open).
func (w *WAL) resetWALLocked() error {
	w.salt = crc64.Checksum(binary.BigEndian.AppendUint64(
		binary.BigEndian.AppendUint64(nil, w.salt), w.gen), crcTab)
	if err := w.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := w.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	hdr := walHeader(w.gen, w.salt)
	if _, err := w.wal.Write(hdr); err != nil {
		return err
	}
	// The header must be durable before any frame chains off it.
	if err := w.wal.Sync(); err != nil {
		return err
	}
	w.prevSum = binary.BigEndian.Uint64(hdr[28:36])
	w.seq = 0
	w.walSize = walHeaderLen
	return nil
}

// frameSum chains a frame's checksum off its predecessor's.
func frameSum(prev, seq uint64, payload []byte) uint64 {
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:8], prev)
	binary.BigEndian.PutUint64(hdr[8:16], seq)
	sum := crc64.Update(0, crcTab, hdr[:])
	return crc64.Update(sum, crcTab, payload)
}

// Get implements Store.
func (w *WAL) Get(key string) ([]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	v, ok := w.img.get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Scan implements Store.
func (w *WAL) Scan(prefix string, fn func(key string, value []byte) bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.img.scan(prefix, func(k string, v []byte) bool {
		return fn(k, append([]byte(nil), v...))
	})
}

// Count implements Store.
func (w *WAL) Count(prefix string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.img.count(prefix)
}

// Put implements Store.
func (w *WAL) Put(key string, value []byte) error {
	return w.Apply([]Op{{Kind: OpPut, Key: key, Value: value}})
}

// Delete implements Store.
func (w *WAL) Delete(key string) error {
	return w.Apply([]Op{{Kind: OpDelete, Key: key}})
}

// Apply implements Store: one frame per batch, atomic by checksum — a
// crash mid-append leaves a frame that fails validation and is truncated
// on recovery, so either every op of the batch survives or none does.
func (w *WAL) Apply(ops []Op) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	e := wire.AcquireEncoder()
	defer e.Release()
	encodeOps(e, ops)
	payload := e.Bytes()
	seq := w.seq + 1
	sum := frameSum(w.prevSum, seq, payload)
	var fh [frameHdrLen]byte
	binary.BigEndian.PutUint32(fh[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(fh[4:12], seq)
	binary.BigEndian.PutUint64(fh[12:20], sum)
	if _, err := w.wal.Write(fh[:]); err != nil {
		return err
	}
	if _, err := w.wal.Write(payload); err != nil {
		return err
	}
	w.reg.Counter("kv.appends").Inc()
	if w.opts.SyncEveryCommit {
		w.reg.Counter("kv.syncs").Inc()
		if err := w.wal.Sync(); err != nil {
			return err
		}
	}
	w.seq = seq
	w.prevSum = sum
	w.walSize += int64(frameHdrLen) + int64(len(payload))
	for _, op := range ops {
		switch op.Kind {
		case OpPut:
			w.img.put(op.Key, append([]byte(nil), op.Value...))
		case OpDelete:
			w.img.del(op.Key)
		}
	}
	if w.ckptAt > 0 && w.walSize >= w.ckptAt {
		return w.checkpointLocked()
	}
	return nil
}

// Checkpoint implements Checkpointer: fold the log into the main file now.
func (w *WAL) Checkpoint() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.checkpointLocked()
}

// checkpointLocked writes the image as a fresh page file at generation+1,
// atomically swaps it in, then resets the log. Crash windows, in order:
// before the rename the old main+log pair is untouched; between the
// rename and the log reset the log's generation is stale and recovery
// discards it (its frames are all inside the new main file); a torn log
// header is rewritten. Caller holds w.mu.
func (w *WAL) checkpointLocked() error {
	tmpPath := w.path + ".ckpt"
	tmp, err := w.fs.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		tmp.Close()
		if rerr := w.fs.Remove(tmpPath); rerr != nil {
			return fmt.Errorf("%w (and removing %s: %v)", err, tmpPath, rerr)
		}
		return err
	}
	// Record stream in key order: deterministic page images.
	e := wire.NewEncoder(w.img.len() * 32)
	records := uint64(0)
	w.img.scan("", func(k string, v []byte) bool {
		e.String(k)
		e.Bytes2(v)
		records++
		return true
	})
	payload := e.Bytes()
	newGen := w.gen + 1

	hdr := make([]byte, mainHeaderLen)
	copy(hdr, mainMagic)
	binary.BigEndian.PutUint32(hdr[8:12], kvVersion)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(w.pageSize))
	binary.BigEndian.PutUint64(hdr[16:24], newGen)
	binary.BigEndian.PutUint64(hdr[24:32], records)
	binary.BigEndian.PutUint64(hdr[32:40], uint64(len(payload)))
	binary.BigEndian.PutUint64(hdr[40:48], crc64.Checksum(hdr[:40], crcTab))
	page := make([]byte, w.pageSize)
	copy(page, hdr)
	written := int64(0)
	if _, err := tmp.Write(page); err != nil {
		return abort(err)
	}
	written += int64(w.pageSize)
	payloadPerPage := w.pageSize - 8
	for off := 0; off < len(payload); off += payloadPerPage {
		for i := range page {
			page[i] = 0
		}
		copy(page[:payloadPerPage], payload[off:])
		binary.BigEndian.PutUint64(page[payloadPerPage:], crc64.Checksum(page[:payloadPerPage], crcTab))
		if _, err := tmp.Write(page); err != nil {
			return abort(err)
		}
		written += int64(w.pageSize)
	}
	if err := tmp.Sync(); err != nil {
		return abort(err)
	}
	if err := w.fs.Rename(tmpPath, w.path); err != nil {
		return abort(err)
	}
	// The new main file is live; the staging handle is no longer needed
	// (the main file is only read at open and rewritten at checkpoint).
	var errs []error
	if err := w.fs.SyncDir(w.path); err != nil {
		errs = append(errs, fmt.Errorf("kv: checkpoint dir sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		errs = append(errs, fmt.Errorf("kv: closing checkpoint file: %w", err))
	}
	w.gen = newGen
	w.mainSize = written
	w.reg.Counter("kv.checkpoints").Inc()
	if err := w.resetWALLocked(); err != nil {
		errs = append(errs, fmt.Errorf("kv: resetting wal after checkpoint: %w", err))
	}
	return errors.Join(errs...)
}

// Size implements Sizer: the combined footprint of main file and log.
func (w *WAL) Size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.mainSize + w.walSize, nil
}

// WALSize reports the current write-ahead-log size in bytes (tests and
// benchmarks watch it shrink across checkpoints).
func (w *WAL) WALSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.walSize
}

// Generation reports the main file's checkpoint generation.
func (w *WAL) Generation() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// Close implements Store.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.wal.Close()
}
