package kv_test

// The crash-chaos suite. A workload of batches and maintenance calls runs
// against a CrashFS whose budget is swept from zero to the workload's
// total mutating-op count, so EVERY crash window — mid-commit frame, mid
// compaction, mid checkpoint, mid log reset, the torn final write itself —
// is visited deterministically. After each simulated crash the store is
// reopened on the real filesystem and checked against the model:
//
//   - every acknowledged batch is present (durability),
//   - the one in-flight batch is either fully present or fully absent
//     (atomicity),
//   - maintenance (Compact/Checkpoint) never changes visible state,
//   - recovery is idempotent (a second reopen sees the same state), and
//   - the recovered store accepts new writes.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wls/internal/kv"
	"wls/internal/kv/kvtest"
)

// chaosAction is one step of the workload: a batch of ops, or (when ops
// is nil) a maintenance call — Compact for the log backend, Checkpoint
// for the WAL backend.
type chaosAction struct {
	ops []kv.Op
}

type chaosBackend struct {
	name string
	open func(dir string, fs kv.FS) (kv.Store, error)
}

func chaosBackends() []chaosBackend {
	return []chaosBackend{
		{
			name: "log",
			open: func(dir string, fs kv.FS) (kv.Store, error) {
				return kv.OpenLog(logPath(dir), kv.Options{SyncEveryCommit: true, FS: fs})
			},
		},
		{
			name: "wal",
			open: func(dir string, fs kv.FS) (kv.Store, error) {
				return kv.OpenWAL(walPath(dir), kv.Options{
					SyncEveryCommit: true,
					FS:              fs,
					CheckpointBytes: -1, // maintenance actions drive checkpoints
				})
			},
		},
	}
}

func maintain(s kv.Store) error {
	if c, ok := s.(kv.Compacter); ok {
		return c.Compact()
	}
	if c, ok := s.(kv.Checkpointer); ok {
		return c.Checkpoint()
	}
	return nil
}

// chaosWorkload builds a deterministic action list: batches of 1-4 ops
// over a small key space (so deletes hit live keys), with maintenance
// every eighth action.
func chaosWorkload(seed int64, n int) []chaosAction {
	rng := rand.New(rand.NewSource(seed))
	actions := make([]chaosAction, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 && i%8 == 0 {
			actions = append(actions, chaosAction{}) // maintenance
			continue
		}
		nops := 1 + rng.Intn(4)
		ops := make([]kv.Op, 0, nops)
		for j := 0; j < nops; j++ {
			key := fmt.Sprintf("k%02d", rng.Intn(20))
			if rng.Intn(4) == 0 {
				ops = append(ops, kv.Op{Kind: kv.OpDelete, Key: key})
			} else {
				ops = append(ops, kv.Op{
					Kind:  kv.OpPut,
					Key:   key,
					Value: []byte(fmt.Sprintf("v%d.%d", i, j)),
				})
			}
		}
		actions = append(actions, chaosAction{ops: ops})
	}
	return actions
}

func applyToModel(m map[string]string, ops []kv.Op) {
	for _, op := range ops {
		if op.Kind == kv.OpPut {
			m[op.Key] = string(op.Value)
		} else {
			delete(m, op.Key)
		}
	}
}

func cloneModel(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// countMutatingOps dry-runs the workload to find the sweep bound.
func countMutatingOps(t *testing.T, bc chaosBackend, actions []chaosAction) int {
	t.Helper()
	dir := t.TempDir()
	rec := kvtest.NewCrashFS(nil, -1)
	s, err := bc.open(dir, rec)
	if err != nil {
		t.Fatalf("dry-run open: %v", err)
	}
	for _, a := range actions {
		if a.ops == nil {
			err = maintain(s)
		} else {
			err = s.Apply(a.ops)
		}
		if err != nil {
			t.Fatalf("dry-run action: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("dry-run close: %v", err)
	}
	return rec.MutatingOps()
}

// runCrashAt executes the workload against a CrashFS with the given step
// budget, then reopens on the real filesystem and checks the invariants.
func runCrashAt(t *testing.T, bc chaosBackend, actions []chaosAction, step, tearNum, tearDen int) {
	t.Helper()
	dir := t.TempDir()
	cfs := kvtest.NewCrashFS(nil, step)
	cfs.SetTear(tearNum, tearDen)

	acked := map[string]string{}
	var inflight []kv.Op

	s, err := bc.open(dir, cfs)
	if err == nil {
		for _, a := range actions {
			if a.ops == nil {
				err = maintain(s)
			} else {
				err = s.Apply(a.ops)
			}
			if err != nil {
				if a.ops != nil {
					inflight = a.ops
				}
				break
			}
			if a.ops != nil {
				applyToModel(acked, a.ops)
			}
		}
		s.Close() // post-crash close errors are expected; ignored
	}
	if !cfs.Crashed() {
		t.Fatalf("step %d: workload finished without crashing (budget too large for sweep)", step)
	}

	// Recovery on the real filesystem.
	s2, err := bc.open(dir, nil)
	if err != nil {
		t.Fatalf("step %d: reopen after crash failed: %v\nops:\n  %v", step, err, cfs.Ops())
	}
	got := dump(s2)
	withInflight := cloneModel(acked)
	if inflight != nil {
		applyToModel(withInflight, inflight)
	}
	if !reflect.DeepEqual(got, acked) && !reflect.DeepEqual(got, withInflight) {
		t.Fatalf("step %d: recovered state matches neither acked nor acked+inflight\n got: %v\nacked: %v\nwith inflight: %v",
			step, got, acked, withInflight)
	}
	// Recovery must be idempotent and leave a writable store.
	if err := s2.Put("post-crash", []byte("ok")); err != nil {
		t.Fatalf("step %d: recovered store rejects writes: %v", step, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("step %d: close after recovery: %v", step, err)
	}
	s3, err := bc.open(dir, nil)
	if err != nil {
		t.Fatalf("step %d: second reopen failed: %v", step, err)
	}
	if v, ok := s3.Get("post-crash"); !ok || string(v) != "ok" {
		t.Fatalf("step %d: write after recovery lost on reopen", step)
	}
	if err := s3.Close(); err != nil {
		t.Fatalf("step %d: final close: %v", step, err)
	}
}

// TestCrashChaosSweep visits every crash window of a fixed workload.
func TestCrashChaosSweep(t *testing.T) {
	for _, bc := range chaosBackends() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			actions := chaosWorkload(1, 40)
			total := countMutatingOps(t, bc, actions)
			if total < 40 {
				t.Fatalf("workload only produced %d mutating ops", total)
			}
			// Vary the tear fraction across steps: boundary tears, half
			// tears, and almost-complete frames.
			tears := [][2]int{{0, 1}, {1, 2}, {9, 10}}
			for step := 0; step < total; step++ {
				tear := tears[step%len(tears)]
				runCrashAt(t, bc, actions, step, tear[0], tear[1])
			}
		})
	}
}

// TestCrashChaosSeeded samples crash points across randomized workloads.
func TestCrashChaosSeeded(t *testing.T) {
	for _, bc := range chaosBackends() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			for seed := int64(2); seed < 6; seed++ {
				actions := chaosWorkload(seed, 30)
				total := countMutatingOps(t, bc, actions)
				rng := rand.New(rand.NewSource(seed * 977))
				for i := 0; i < 12; i++ {
					step := rng.Intn(total)
					runCrashAt(t, bc, actions, step, rng.Intn(10), 10)
				}
			}
		})
	}
}
