// Package kv is the bottom layer of the persistence stack: a flat,
// byte-ordered key-value store with atomic batch commit. Everything above
// it — the tuple layer (internal/tuple: named spaces with XA sessions) and
// the table layer (internal/store: versioned rows, triggers, change log) —
// is written once against this interface, so swapping the durability
// engine under the middle tier is a constructor change, not a rewrite.
// That is the shape §3.3 and §5.1 of the paper assume: middle-tier data
// "is accessed only in limited ways, e.g., by key or through a sequential
// scan", so the narrow waist of the stack is exactly Get/Put/Delete/Scan
// plus an atomic batch.
//
// Three interchangeable backends ship with the package:
//
//   - Mem (mem.go): an in-memory ordered map. No durability; the baseline
//     every other backend is benchmarked against (E32).
//   - Log (log.go): a single append-only log file, one length-prefixed
//     frame per committed batch, replayed on open. Compaction rewrites the
//     live image and atomically swaps the file.
//   - WAL (wal.go): a page-organized main file plus a write-ahead log with
//     per-frame chained checksums, modeled on SQLite's WAL design:
//     commits append frames; checkpoints fold the log into the main file;
//     recovery replays the WAL and stops at the first torn frame.
//
// All three pass the same conformance suite (conformance_test.go) and the
// durable two pass the same seeded crash-chaos suite (chaos_test.go).
package kv

import (
	"errors"
	"fmt"
)

// Errors shared by all backends.
var (
	// ErrClosed is returned by mutations after Close.
	ErrClosed = errors.New("kv: closed")
	// ErrCorrupt wraps unrecoverable on-disk corruption found on open:
	// a bad magic number, an unreadable header, or a main-file page whose
	// checksum does not match. (A torn log or WAL *tail* is not corruption
	// — it is the expected shape of a crash and is truncated silently.)
	ErrCorrupt = errors.New("kv: corrupt store")
)

// OpKind distinguishes batch operations.
type OpKind byte

// Batch operation kinds.
const (
	OpPut OpKind = iota + 1
	OpDelete
)

// Op is one operation of an atomic batch.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte // nil for OpDelete
}

// Store is a flat key-value store ordered by the byte order of its keys.
//
// Concurrency: every method is safe for concurrent use. Scan holds the
// store's internal lock while invoking fn; fn must not call back into the
// store.
//
// Ownership: values returned by Get and passed to Scan's fn are copies the
// caller owns; values passed to Put/Apply are copied on entry, so the
// caller may reuse its buffers.
type Store interface {
	// Get returns the value for key.
	Get(key string) ([]byte, bool)
	// Scan visits every key with the given prefix in ascending byte
	// order; fn returning false stops the scan early. An empty prefix
	// scans the whole store.
	Scan(prefix string, fn func(key string, value []byte) bool)
	// Count returns the number of keys with the given prefix.
	Count(prefix string) int
	// Put durably commits key=value.
	Put(key string, value []byte) error
	// Delete durably removes key. Deleting a missing key is a no-op.
	Delete(key string) error
	// Apply durably commits ops as one atomic batch: after a crash either
	// every op is visible or none is. Ops apply in order, so a later op
	// on the same key wins.
	Apply(ops []Op) error
	// Close releases the backend. Further mutations return ErrClosed;
	// reads keep serving the final in-memory image.
	Close() error
}

// Compacter is implemented by backends whose files grow with write volume
// and can be rewritten to hold only live data (the Log backend).
type Compacter interface {
	Compact() error
}

// Checkpointer is implemented by backends with a separate write-ahead log
// that can be folded into the main file (the WAL backend).
type Checkpointer interface {
	Checkpoint() error
}

// Sizer reports the on-disk footprint of a durable backend.
type Sizer interface {
	Size() (int64, error)
}

// corruptf builds an ErrCorrupt with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
