package kv_test

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"wls/internal/kv"
)

func openWAL(t *testing.T, dir string, opts kv.Options) *kv.WAL {
	t.Helper()
	w, err := kv.OpenWAL(walPath(dir), opts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w
}

// manualCkpt disables auto-checkpointing so tests control generations.
var manualCkpt = kv.Options{CheckpointBytes: -1}

func TestWALTornFinalFrameTruncated(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, manualCkpt)
	if err := w.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final frame: chop bytes off the end of the log.
	wal := walPath(dir) + "-wal"
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir, manualCkpt)
	defer w2.Close()
	if _, ok := w2.Get("a"); !ok {
		t.Fatalf("frame before the torn one was lost")
	}
	if _, ok := w2.Get("b"); ok {
		t.Fatalf("torn frame survived recovery")
	}
	// The store keeps working after the truncation.
	if err := w2.Put("c", []byte("3")); err != nil {
		t.Fatalf("Put after torn-tail recovery: %v", err)
	}
}

func TestWALCorruptMiddleFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, manualCkpt)
	for _, k := range []string{"a", "b", "c"} {
		if err := w.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wal := walPath(dir) + "-wal"
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the SECOND frame's payload; the chained checksum
	// rejects it and everything after it, while the first frame stands.
	// Layout: 36-byte header, then frames of 20-byte header + payload.
	const walHdr, frameHdr = 36, 20
	plen1 := int(uint32(b[walHdr])<<24 | uint32(b[walHdr+1])<<16 | uint32(b[walHdr+2])<<8 | uint32(b[walHdr+3]))
	frame2 := walHdr + frameHdr + plen1
	b[frame2+frameHdr] ^= 0xFF
	if err := os.WriteFile(wal, b, 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir, manualCkpt)
	defer w2.Close()
	if _, ok := w2.Get("a"); !ok {
		t.Fatalf("frames before the corruption were lost")
	}
	if _, ok := w2.Get("c"); ok {
		t.Fatalf("frame after a corrupt one survived replay")
	}
}

func TestWALCheckpointFoldsLogAndBumpsGeneration(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, manualCkpt)
	for i := 0; i < 20; i++ {
		if err := w.Put(string(rune('a'+i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := dump(w)
	grewTo := w.WALSize()
	if grewTo <= 0 {
		t.Fatalf("WAL did not grow: %d", grewTo)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if w.Generation() != 1 {
		t.Fatalf("generation after first checkpoint = %d", w.Generation())
	}
	if got := w.WALSize(); got >= grewTo {
		t.Fatalf("WAL did not shrink across checkpoint: %d -> %d", grewTo, got)
	}
	if got := dump(w); !reflect.DeepEqual(got, before) {
		t.Fatalf("checkpoint changed visible state")
	}
	// More commits, second checkpoint, reopen: all state from main file.
	if err := w.Put("zz", []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir, manualCkpt)
	defer w2.Close()
	if w2.Generation() != 2 {
		t.Fatalf("generation after reopen = %d", w2.Generation())
	}
	if v, ok := w2.Get("zz"); !ok || string(v) != "tail" {
		t.Fatalf("post-checkpoint commit lost: %q %v", v, ok)
	}
}

func TestWALStaleLogDiscarded(t *testing.T) {
	// Simulates the crash window between "rename new main file" and
	// "reset log": a log whose generation predates the main file must be
	// discarded wholesale, because every frame in it was checkpointed.
	dir := t.TempDir()
	w := openWAL(t, dir, manualCkpt)
	if err := w.Put("committed", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil { // gen 1, log reset
		t.Fatal(err)
	}
	if err := w.Put("in-log", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	// Save the gen-1 log, checkpoint to gen 2, then put the stale gen-1
	// log back — exactly what disk looks like if the reset never ran.
	wal := walPath(dir) + "-wal"
	stale, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil { // gen 2: "in-log" now in main
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir, manualCkpt)
	defer w2.Close()
	if _, ok := w2.Get("committed"); !ok {
		t.Fatalf("checkpointed state lost")
	}
	if v, ok := w2.Get("in-log"); !ok || string(v) != "yes" {
		t.Fatalf("frame from stale log not recovered from main file: %q %v", v, ok)
	}
	// The stale log must have been reset, not appended to.
	if w2.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", w2.Generation())
	}
	if err := w2.Put("after", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestWALGarbledHeaderReset(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, manualCkpt)
	if err := w.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-reset can leave a partial header; recovery rewrites it.
	wal := walPath(dir) + "-wal"
	if err := os.WriteFile(wal, []byte("WLSKVW"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir, manualCkpt)
	defer w2.Close()
	if _, ok := w2.Get("a"); !ok {
		t.Fatalf("main-file state lost under garbled log header")
	}
	if err := w2.Put("b", []byte("2")); err != nil {
		t.Fatalf("store unusable after log header reset: %v", err)
	}
}

func TestWALCorruptMainFileRejected(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, manualCkpt)
	for i := 0; i < 100; i++ {
		if err := w.Put(strings.Repeat("k", i%7+1)+string(rune('a'+i%26)), []byte(strings.Repeat("v", 50))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	main := walPath(dir)
	b, err := os.ReadFile(main)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) <= 4096 {
		t.Fatalf("main file has no data pages: %d bytes", len(b))
	}
	// Flip a byte inside a data page: the page checksum must catch it.
	b[4096+100] ^= 0xFF
	if err := os.WriteFile(main, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = kv.OpenWAL(main, manualCkpt)
	if err == nil {
		t.Fatalf("corrupt main file opened without error")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error does not identify corruption: %v", err)
	}
}

func TestWALAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, kv.Options{CheckpointBytes: 2048})
	val := make([]byte, 256)
	for i := 0; i < 64; i++ {
		if err := w.Put(string(rune('a'+i%26))+string(rune('0'+i/26)), val); err != nil {
			t.Fatal(err)
		}
	}
	if w.Generation() == 0 {
		t.Fatalf("auto-checkpoint never fired (wal size %d)", w.WALSize())
	}
	if w.WALSize() > 2048+4096 {
		t.Fatalf("WAL grew far past the checkpoint threshold: %d", w.WALSize())
	}
	before := dump(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir, kv.Options{CheckpointBytes: 2048})
	defer w2.Close()
	if got := dump(w2); !reflect.DeepEqual(got, before) {
		t.Fatalf("state diverged across auto-checkpoint + reopen")
	}
}

func TestWALPageSpanningRecords(t *testing.T) {
	// Values larger than a page force the record stream to span pages.
	dir := t.TempDir()
	w := openWAL(t, dir, kv.Options{PageSize: 128, CheckpointBytes: -1})
	big := make([]byte, 1000)
	for i := range big {
		big[i] = byte(i)
	}
	if err := w.Put("big", big); err != nil {
		t.Fatal(err)
	}
	if err := w.Put("small", []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir, kv.Options{PageSize: 128, CheckpointBytes: -1})
	defer w2.Close()
	v, ok := w2.Get("big")
	if !ok || !reflect.DeepEqual(v, big) {
		t.Fatalf("page-spanning record damaged (ok=%v len=%d)", ok, len(v))
	}
	if _, ok := w2.Get("small"); !ok {
		t.Fatalf("record after the spanning one lost")
	}
}

func TestWALDeleteDurable(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, manualCkpt)
	if err := w.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := w.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir, manualCkpt)
	defer w2.Close()
	if _, ok := w2.Get("k"); ok {
		t.Fatalf("delete frame lost: checkpointed put resurrected")
	}
}
