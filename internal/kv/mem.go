package kv

import "sync"

// Mem is the in-memory backend: the image with a mutex around it. It is
// the latency floor the durable backends are measured against (E32) and
// the default engine under store.New, which preserves the pre-refactor
// behaviour of a purely in-memory database substrate.
type Mem struct {
	// mu guards img; Get copies out under it and Scan runs its callback
	// under it (the Store contract forbids reentrancy from fn).
	mu     sync.Mutex
	img    *image
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{img: newImage()}
}

// Get implements Store.
func (m *Mem) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.img.get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Scan implements Store.
func (m *Mem) Scan(prefix string, fn func(key string, value []byte) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.img.scan(prefix, func(k string, v []byte) bool {
		return fn(k, append([]byte(nil), v...))
	})
}

// Count implements Store.
func (m *Mem) Count(prefix string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.img.count(prefix)
}

// Put implements Store.
func (m *Mem) Put(key string, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.img.put(key, append([]byte(nil), value...))
	return nil
}

// Delete implements Store.
func (m *Mem) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.img.del(key)
	return nil
}

// Apply implements Store. In-memory application under one lock hold is
// trivially atomic.
func (m *Mem) Apply(ops []Op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for _, op := range ops {
		switch op.Kind {
		case OpPut:
			m.img.put(op.Key, append([]byte(nil), op.Value...))
		case OpDelete:
			m.img.del(op.Key)
		}
	}
	return nil
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
