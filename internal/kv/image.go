package kv

import "sort"

// image is the in-memory picture of a store's live data, shared by every
// backend: Mem serves from it directly, Log and WAL rebuild it on open and
// keep it current as commits land. The sorted-key index is built lazily —
// writes invalidate it, the next Scan rebuilds it — so write-heavy phases
// pay O(1) per op and scan-heavy phases pay one sort after the last write.
type image struct {
	m    map[string][]byte
	keys []string // sorted; nil when stale
}

func newImage() *image {
	return &image{m: make(map[string][]byte)}
}

func (im *image) get(key string) ([]byte, bool) {
	v, ok := im.m[key]
	return v, ok
}

// put stores value as given; the caller is responsible for copy semantics.
func (im *image) put(key string, value []byte) {
	if _, existed := im.m[key]; !existed {
		im.keys = nil
	}
	im.m[key] = value
}

func (im *image) del(key string) {
	if _, existed := im.m[key]; existed {
		im.keys = nil
		delete(im.m, key)
	}
}

func (im *image) apply(ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case OpPut:
			im.put(op.Key, op.Value)
		case OpDelete:
			im.del(op.Key)
		}
	}
}

func (im *image) len() int { return len(im.m) }

// sorted returns the key index, rebuilding it if writes invalidated it.
func (im *image) sorted() []string {
	if im.keys == nil {
		keys := make([]string, 0, len(im.m))
		for k := range im.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		im.keys = keys
	}
	return im.keys
}

// scan visits keys with the prefix in ascending order. The values passed
// to fn alias the image; callers that hand them out must copy.
func (im *image) scan(prefix string, fn func(key string, value []byte) bool) {
	keys := im.sorted()
	i := sort.SearchStrings(keys, prefix)
	for ; i < len(keys); i++ {
		k := keys[i]
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			return
		}
		if !fn(k, im.m[k]) {
			return
		}
	}
}

// count returns the number of keys carrying the prefix.
func (im *image) count(prefix string) int {
	if prefix == "" {
		return len(im.m)
	}
	keys := im.sorted()
	n := 0
	for i := sort.SearchStrings(keys, prefix); i < len(keys); i++ {
		k := keys[i]
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			break
		}
		n++
	}
	return n
}
