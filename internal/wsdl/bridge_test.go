package wsdl_test

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"wls/internal/simtest"
	"wls/internal/soap"
	"wls/internal/wsdl"
)

// TestSOAPBridgeDrivesConversations runs the loosely-coupled path: SOAP
// envelopes over real HTTP into the same conversation runtime.
func TestSOAPBridgeDrivesConversations(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 1})
	defer f.Stop()
	port := wsdl.NewPort(f.Servers[0].Registry, nil)
	port.Offer(&wsdl.ServiceDef{
		Name: "Counter",
		Operations: map[string]wsdl.Operation{
			"inc": {Kind: wsdl.RequestResponse, Handler: func(c *wsdl.Conversation, p []byte) ([]byte, error) {
				n, _ := strconv.Atoi(c.Get("n"))
				c.Set("n", strconv.Itoa(n+1))
				return []byte(strconv.Itoa(n + 1)), nil
			}},
		},
	})
	srv := httptest.NewServer(soap.Endpoint(port.SOAPHandler()))
	defer srv.Close()

	convID, err := soap.Post(nil, srv.URL, "start", "", "Counter")
	if err != nil {
		t.Fatal(err)
	}
	if convID == "" {
		t.Fatal("no conversation id")
	}
	for want := 1; want <= 3; want++ {
		out, err := soap.Post(nil, srv.URL, "inc", convID, "")
		if err != nil {
			t.Fatal(err)
		}
		if out != strconv.Itoa(want) {
			t.Fatalf("inc -> %q, want %d", out, want)
		}
	}
	// Two independent SOAP clients get independent conversations.
	convID2, _ := soap.Post(nil, srv.URL, "start", "", "Counter")
	out, _ := soap.Post(nil, srv.URL, "inc", convID2, "")
	if out != "1" {
		t.Fatalf("second conversation contaminated: %q", out)
	}
	// Finish tears down.
	if _, err := soap.Post(nil, srv.URL, "finish", convID, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := soap.Post(nil, srv.URL, "inc", convID, ""); err == nil ||
		!strings.Contains(err.Error(), "no such conversation") {
		t.Fatalf("finished conversation still live: %v", err)
	}
}

func TestSOAPBridgeUnknownServiceFaults(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 1})
	defer f.Stop()
	port := wsdl.NewPort(f.Servers[0].Registry, nil)
	srv := httptest.NewServer(soap.Endpoint(port.SOAPHandler()))
	defer srv.Close()
	if _, err := soap.Post(nil, srv.URL, "start", "", "Ghost"); err == nil {
		t.Fatal("want fault for unknown service")
	}
}
