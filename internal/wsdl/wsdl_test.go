package wsdl_test

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"wls/internal/filestore"
	"wls/internal/simtest"
	"wls/internal/wsdl"
)

// ports builds one WS port per fixture server.
func ports(t *testing.T, n int) (*simtest.Fixture, []*wsdl.Port) {
	t.Helper()
	f := simtest.New(simtest.Options{Servers: n})
	t.Cleanup(f.Stop)
	var ps []*wsdl.Port
	for _, s := range f.Servers {
		ps = append(ps, wsdl.NewPort(s.Registry, nil))
	}
	f.Settle(2)
	return f, ps
}

// quoteService is a stateful request-response service.
func quoteService() *wsdl.ServiceDef {
	return &wsdl.ServiceDef{
		Name: "QuoteService",
		Operations: map[string]wsdl.Operation{
			"requestQuote": {Kind: wsdl.RequestResponse, Handler: func(c *wsdl.Conversation, payload []byte) ([]byte, error) {
				n, _ := strconv.Atoi(c.Get("quotes"))
				c.Set("quotes", strconv.Itoa(n+1))
				return []byte(fmt.Sprintf("quote-%d for %s", n+1, payload)), nil
			}},
			"note": {Kind: wsdl.OneWay, Handler: nil}, // queued in the inbox
		},
		Callbacks: map[string]wsdl.OpKind{
			"priceChanged": wsdl.Notification,
			"confirm":      wsdl.SolicitResponse,
		},
	}
}

func TestConversationRequestResponse(t *testing.T) {
	_, ps := ports(t, 2)
	ps[1].Offer(quoteService())
	ctx := context.Background()

	conv, err := ps[0].StartConversation(ctx, ps[1].Addr(), "QuoteService", nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := conv.Call(ctx, "requestQuote", []byte("IBM"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "quote-1 for IBM" {
		t.Fatalf("out = %q", out)
	}
	// Conversation state persists between operations on the server side.
	out2, _ := conv.Call(ctx, "requestQuote", []byte("BEA"))
	if string(out2) != "quote-2 for BEA" {
		t.Fatalf("out2 = %q", out2)
	}
}

func TestConversationsAreIsolatedFromEachOther(t *testing.T) {
	_, ps := ports(t, 2)
	ps[1].Offer(quoteService())
	ctx := context.Background()
	c1, _ := ps[0].StartConversation(ctx, ps[1].Addr(), "QuoteService", nil)
	c2, _ := ps[0].StartConversation(ctx, ps[1].Addr(), "QuoteService", nil)
	c1.Call(ctx, "requestQuote", []byte("A"))
	c1.Call(ctx, "requestQuote", []byte("B"))
	out, _ := c2.Call(ctx, "requestQuote", []byte("C"))
	if string(out) != "quote-1 for C" {
		t.Fatalf("conversation state leaked: %q", out)
	}
}

func TestUnknownOperationRejected(t *testing.T) {
	_, ps := ports(t, 2)
	ps[1].Offer(quoteService())
	conv, _ := ps[0].StartConversation(context.Background(), ps[1].Addr(), "QuoteService", nil)
	if _, err := conv.Call(context.Background(), "hack", nil); err == nil ||
		!strings.Contains(err.Error(), "operation not in service definition") {
		t.Fatalf("want WSDL rejection, got %v", err)
	}
}

func TestUnknownServiceRejected(t *testing.T) {
	_, ps := ports(t, 2)
	if _, err := ps[0].StartConversation(context.Background(), ps[1].Addr(), "Ghost", nil); err == nil {
		t.Fatal("want error for unknown service")
	}
}

func TestOneWayQueuesInMemoryWithConversation(t *testing.T) {
	_, ps := ports(t, 2)
	svc := quoteService()
	var serverConv *wsdl.Conversation
	svc.OnStart = func(c *wsdl.Conversation) { serverConv = c }
	ps[1].Offer(svc)
	ctx := context.Background()
	conv, _ := ps[0].StartConversation(ctx, ps[1].Addr(), "QuoteService", nil)
	for i := 0; i < 3; i++ {
		if err := conv.Send(ctx, "note", []byte(fmt.Sprintf("n%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	msgs := serverConv.Inbox("note")
	if len(msgs) != 3 || string(msgs[0]) != "n0" {
		t.Fatalf("inbox = %v", msgs)
	}
	if len(serverConv.Inbox("note")) != 0 {
		t.Fatal("inbox not drained")
	}
}

func TestCallbacksReachTheClientByLocationEmbedding(t *testing.T) {
	_, ps := ports(t, 2)
	svc := quoteService()
	var serverConv *wsdl.Conversation
	svc.OnStart = func(c *wsdl.Conversation) { serverConv = c }
	ps[1].Offer(svc)
	ctx := context.Background()

	notified := make(chan string, 1)
	callbacks := map[string]wsdl.Handler{
		"priceChanged": func(c *wsdl.Conversation, payload []byte) ([]byte, error) {
			notified <- string(payload)
			return nil, nil
		},
		"confirm": func(c *wsdl.Conversation, payload []byte) ([]byte, error) {
			return []byte("yes to " + string(payload)), nil
		},
	}
	conv, err := ps[0].StartConversation(ctx, ps[1].Addr(), "QuoteService", callbacks)
	if err != nil {
		t.Fatal(err)
	}
	// The conversation ID embeds the client's address.
	loc, ok := wsdl.LocationOf(conv.ID)
	if !ok || loc != ps[0].Addr() {
		t.Fatalf("location embedding broken: %q", conv.ID)
	}
	// Notification (server → client, one-way).
	if err := serverConv.Send(ctx, "priceChanged", []byte("IBM@85")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-notified:
		if got != "IBM@85" {
			t.Fatalf("notification = %q", got)
		}
	default:
		t.Fatal("notification not delivered")
	}
	// Solicit-response (server → client with correlated reply).
	out, err := serverConv.Solicit(ctx, "confirm", []byte("order-1"))
	if err != nil || string(out) != "yes to order-1" {
		t.Fatalf("solicit: %q err=%v", out, err)
	}
}

func TestUndeclaredCallbackRejectedAtSender(t *testing.T) {
	_, ps := ports(t, 2)
	svc := quoteService()
	var serverConv *wsdl.Conversation
	svc.OnStart = func(c *wsdl.Conversation) { serverConv = c }
	ps[1].Offer(svc)
	ps[0].StartConversation(context.Background(), ps[1].Addr(), "QuoteService", nil)
	if err := serverConv.Send(context.Background(), "newServiceOnClient", nil); err == nil {
		t.Fatal("server must not invoke operations outside its declared callbacks")
	}
}

// TestE19SubordinateCallbackIsolation is Figure 4: A converses with B; B
// opens subordinate conversations with two C-type services. Callbacks from
// C must arrive at B's client-side objects — never as call-ins on A's
// conversation — and the two subordinates must be unambiguous.
func TestE19SubordinateCallbackIsolation(t *testing.T) {
	f, ps := ports(t, 4)
	_ = f
	ctx := context.Background()
	a, b, c1, c2 := ps[0], ps[1], ps[2], ps[3]

	// C's service calls back "done" on ITS client (which will be B).
	makeC := func(tag string) *wsdl.ServiceDef {
		return &wsdl.ServiceDef{
			Name: "CService",
			Operations: map[string]wsdl.Operation{
				"work": {Kind: wsdl.RequestResponse, Handler: func(c *wsdl.Conversation, payload []byte) ([]byte, error) {
					// Asynchronous completion callback to the client.
					if err := c.Send(ctx, "done", []byte(tag)); err != nil {
						return nil, err
					}
					return []byte("ack-" + tag), nil
				}},
			},
			Callbacks: map[string]wsdl.OpKind{"done": wsdl.Notification},
		}
	}
	c1.Offer(makeC("C1"))
	c2.Offer(makeC("C2"))

	var fromC []string
	var aCallbackHit bool

	// B's service: its "intoB" operation opens subordinate conversations
	// with C1 and C2 — separate dependent objects, one per subordinate.
	b.Offer(&wsdl.ServiceDef{
		Name: "BService",
		Operations: map[string]wsdl.Operation{
			"intoB": {Kind: wsdl.RequestResponse, Handler: func(conv *wsdl.Conversation, payload []byte) ([]byte, error) {
				var results []string
				for _, cAddr := range []string{c1.Addr(), c2.Addr()} {
					sub, err := b.StartConversation(ctx, cAddr, "CService", map[string]wsdl.Handler{
						"done": func(sc *wsdl.Conversation, p []byte) ([]byte, error) {
							fromC = append(fromC, string(p))
							return nil, nil
						},
					})
					if err != nil {
						return nil, err
					}
					out, err := sub.Call(ctx, "work", payload)
					if err != nil {
						return nil, err
					}
					results = append(results, string(out))
				}
				return []byte(strings.Join(results, ",")), nil
			}},
		},
		Callbacks: map[string]wsdl.OpKind{"fromB": wsdl.Notification},
	})

	// A converses with B; A's callback handler must never receive C's
	// "done" callbacks.
	aConv, err := a.StartConversation(ctx, b.Addr(), "BService", map[string]wsdl.Handler{
		"fromB": func(c *wsdl.Conversation, p []byte) ([]byte, error) {
			aCallbackHit = true
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := aConv.Call(ctx, "intoB", []byte("job"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ack-C1,ack-C2" {
		t.Fatalf("out = %q", out)
	}
	if len(fromC) != 2 || fromC[0] != "C1" || fromC[1] != "C2" {
		t.Fatalf("subordinate callbacks = %v (ambiguous or lost)", fromC)
	}
	if aCallbackHit {
		t.Fatal("C's callback leaked into A's conversation (Fig 4 violation)")
	}
}

func TestFinishTearsDownBothSides(t *testing.T) {
	_, ps := ports(t, 2)
	ps[1].Offer(quoteService())
	ctx := context.Background()
	conv, _ := ps[0].StartConversation(ctx, ps[1].Addr(), "QuoteService", nil)
	if ps[1].Conversations() != 1 {
		t.Fatal("server side missing")
	}
	if err := conv.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if ps[0].Conversations() != 0 || ps[1].Conversations() != 0 {
		t.Fatalf("leak: client=%d server=%d", ps[0].Conversations(), ps[1].Conversations())
	}
	if _, err := conv.Call(ctx, "requestQuote", nil); err == nil {
		t.Fatal("finished conversation still callable")
	}
}

func TestDurableConversationSurvivesRestart(t *testing.T) {
	f := simtest.New(simtest.Options{Servers: 2})
	defer f.Stop()
	path := filepath.Join(t.TempDir(), "conv.log")
	fs, err := filestore.Open(path, filestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serverPort := wsdl.NewPort(f.Servers[1].Registry, fs)
	svc := quoteService()
	svc.Durable = true
	serverPort.Offer(svc)
	clientPort := wsdl.NewPort(f.Servers[0].Registry, nil)
	f.Settle(2)

	ctx := context.Background()
	conv, err := clientPort.StartConversation(ctx, serverPort.Addr(), "QuoteService", nil)
	if err != nil {
		t.Fatal(err)
	}
	conv.Call(ctx, "requestQuote", []byte("A"))
	conv.Call(ctx, "requestQuote", []byte("B"))
	fs.Close()

	// "Restart" the server: new port over the reopened filestore.
	srv := f.Restart("server-2")
	fs2, err := filestore.Open(path, filestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	port2 := wsdl.NewPort(srv.Registry, fs2)
	port2.Offer(svc)
	if n := port2.Recover(); n != 1 {
		t.Fatalf("recovered %d conversations, want 1", n)
	}
	f.Settle(2)
	// The long-running conversation continues where it left off.
	out, err := conv.Call(ctx, "requestQuote", []byte("C"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "quote-3 for C" {
		t.Fatalf("state lost: %q", out)
	}
}

func TestInMemoryConversationLostWithServer(t *testing.T) {
	f, ps := ports(t, 2)
	ps[1].Offer(quoteService()) // not durable
	ctx := context.Background()
	conv, _ := ps[0].StartConversation(ctx, ps[1].Addr(), "QuoteService", nil)
	conv.Call(ctx, "requestQuote", []byte("A"))

	srv := f.Restart("server-2")
	port2 := wsdl.NewPort(srv.Registry, nil)
	port2.Offer(quoteService())
	f.Settle(2)

	if _, err := conv.Call(ctx, "requestQuote", []byte("B")); err == nil {
		t.Fatal("in-memory conversation must be lost with the server")
	}
}
