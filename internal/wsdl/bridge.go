package wsdl

import (
	"encoding/base64"
	"fmt"

	"wls/internal/soap"
	"wls/internal/wire"
)

// SOAPHandler bridges loosely-coupled clients (§2.2) into the conversation
// runtime: SOAP envelopes over HTTP drive the same server-side
// conversations that tightly-coupled ports reach over RMI.
//
// Protocol (header Action / ConversationID, body payload):
//
//	Action "start", payload = service name     → response payload = conversation id
//	Action <operation>, ConversationID set     → dispatch; response payload = result
//	Action "finish", ConversationID set        → tear down
//
// Callbacks are not delivered over this bridge: HTTP clients cannot be
// called back, exactly the asymmetry §4 discusses for the
// loosely-coupled Internet infrastructure (they poll instead).
func (p *Port) SOAPHandler() soap.Handler {
	return func(action, convID, payload string) (string, error) {
		switch action {
		case "start":
			service := payload
			p.mu.Lock()
			def, ok := p.services[service]
			p.mu.Unlock()
			if !ok {
				return "", fmt.Errorf("wsdl: no such service: %s", service)
			}
			// The conversation id is created server-side here — the SOAP
			// client has no addressable location to embed (it is not
			// callable back), so the id embeds the server.
			id := p.newConvID()
			c := &Conversation{
				ID: id, Service: service, role: RoleServer, port: p, def: def,
				state: make(map[string]string),
			}
			p.mu.Lock()
			p.convs[id] = c
			p.mu.Unlock()
			if def.OnStart != nil {
				def.OnStart(c)
			}
			p.persist(c)
			p.reg.Counter("ws.conversations_started").Inc()
			return id, nil

		case "finish":
			p.dropConv(convID)
			return "", nil

		default:
			raw, err := base64.StdEncoding.DecodeString(payload)
			if err != nil {
				// Tolerate plain-text payloads for hand-written clients.
				raw = []byte(payload)
			}
			e := wire.NewEncoder(64 + len(raw))
			e.String(convID)
			e.String(action)
			e.Bytes2(raw)
			out, derr := p.dispatchOperation(e.Bytes(), true)
			if derr != nil {
				return "", derr
			}
			return string(out), nil
		}
	}
}
