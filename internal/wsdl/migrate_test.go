package wsdl_test

import (
	"context"
	"strconv"
	"testing"

	"wls/internal/simtest"
	"wls/internal/wsdl"
)

// migration fixture: the service is offered on servers 2 and 3; the client
// lives on server 1.
func migrationFixture(t *testing.T) (*simtest.Fixture, []*wsdl.Port) {
	t.Helper()
	f := simtest.New(simtest.Options{Servers: 3})
	t.Cleanup(f.Stop)
	var ps []*wsdl.Port
	for _, s := range f.Servers {
		ps = append(ps, wsdl.NewPort(s.Registry, nil))
	}
	counter := func() *wsdl.ServiceDef {
		return &wsdl.ServiceDef{
			Name: "Counter",
			Operations: map[string]wsdl.Operation{
				"inc": {Kind: wsdl.RequestResponse, Handler: func(c *wsdl.Conversation, p []byte) ([]byte, error) {
					n, _ := strconv.Atoi(c.Get("n"))
					c.Set("n", strconv.Itoa(n+1))
					return []byte(strconv.Itoa(n + 1)), nil
				}},
			},
		}
	}
	ps[1].Offer(counter())
	ps[2].Offer(counter())
	f.Settle(2)
	return f, ps
}

func TestMigrateConversationKeepsState(t *testing.T) {
	_, ps := migrationFixture(t)
	ctx := context.Background()
	conv, err := ps[0].StartConversation(ctx, ps[1].Addr(), "Counter", nil)
	if err != nil {
		t.Fatal(err)
	}
	conv.Call(ctx, "inc", nil)
	conv.Call(ctx, "inc", nil)

	// Migrate the server side from server-2 to server-3 over RMI.
	if err := ps[1].Migrate(ctx, conv.ID, ps[2].Addr()); err != nil {
		t.Fatal(err)
	}
	if ps[1].Conversations() != 0 {
		t.Fatal("source still holds the conversation")
	}
	if ps[2].Conversations() != 1 {
		t.Fatal("destination did not import")
	}
	// The client re-binds and the conversation continues where it was.
	conv.Rebind(ps[2].Addr())
	out, err := conv.Call(ctx, "inc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "3" {
		t.Fatalf("state lost in migration: %q", out)
	}
}

func TestMigrateToPortWithoutServiceFails(t *testing.T) {
	_, ps := migrationFixture(t)
	ctx := context.Background()
	conv, _ := ps[0].StartConversation(ctx, ps[1].Addr(), "Counter", nil)
	// server-1's port does not offer Counter.
	if err := ps[1].Migrate(ctx, conv.ID, ps[0].Addr()); err == nil {
		t.Fatal("migration to a port without the service must fail")
	}
	// And the source must still own the conversation (no state lost).
	if ps[1].Conversations() != 1 {
		t.Fatal("failed migration dropped the conversation")
	}
}

func TestExportUnknownConversation(t *testing.T) {
	_, ps := migrationFixture(t)
	if _, err := ps[1].Export("nope"); err == nil {
		t.Fatal("want error")
	}
}

func TestClientSideConversationsDoNotMigrate(t *testing.T) {
	_, ps := migrationFixture(t)
	conv, _ := ps[0].StartConversation(context.Background(), ps[1].Addr(), "Counter", nil)
	if _, err := ps[0].Export(conv.ID); err == nil {
		t.Fatal("client-side conversation export must fail")
	}
}
