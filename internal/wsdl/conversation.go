package wsdl

import (
	"context"
	"fmt"

	"wls/internal/rmi"
	"wls/internal/wire"
)

// convRegion is the filestore region holding durable conversation state.
const convRegion = "ws.conversations"

// StartConversation initiates a one-on-one conversation with a service at
// serverAddr. callbacks supplies this client-side object's handlers for
// the operations the server may initiate — they belong to THIS
// conversation object only (Fig 4 isolation).
func (p *Port) StartConversation(ctx context.Context, serverAddr, service string, callbacks map[string]Handler) (*Conversation, error) {
	id := p.newConvID()
	c := &Conversation{
		ID:        id,
		Service:   service,
		Peer:      serverAddr,
		role:      RoleClient,
		port:      p,
		state:     make(map[string]string),
		callbacks: callbacks,
	}
	p.mu.Lock()
	p.convs[id] = c
	p.mu.Unlock()

	e := wire.NewEncoder(64)
	e.String(service)
	e.String(id)
	if _, err := p.invoke(ctx, serverAddr, "start", e.Bytes()); err != nil {
		p.mu.Lock()
		delete(p.convs, id)
		p.mu.Unlock()
		return nil, err
	}
	return c, nil
}

// invoke performs one wls.ws RPC against a peer port.
func (p *Port) invoke(ctx context.Context, addr, method string, args []byte) ([]byte, error) {
	stub := rmi.NewStub(ServiceRMIName, p.node, rmi.StaticView(addr))
	res, err := stub.Invoke(ctx, method, args)
	if err != nil {
		return nil, err
	}
	return res.Body, nil
}

// Call performs a request-response operation within the conversation.
func (c *Conversation) Call(ctx context.Context, op string, payload []byte) ([]byte, error) {
	return c.send(ctx, op, payload, true)
}

// Send performs a one-way (client→server) or notification (server→client)
// operation within the conversation.
func (c *Conversation) Send(ctx context.Context, op string, payload []byte) error {
	_, err := c.send(ctx, op, payload, false)
	return err
}

// Solicit performs a solicit-response callback (server→client) and returns
// the correlated reply.
func (c *Conversation) Solicit(ctx context.Context, op string, payload []byte) ([]byte, error) {
	if c.role != RoleServer {
		return nil, fmt.Errorf("wsdl: Solicit is a server-side operation")
	}
	return c.send(ctx, op, payload, true)
}

func (c *Conversation) send(ctx context.Context, op string, payload []byte, wantReply bool) ([]byte, error) {
	// The server may only initiate operations named as callbacks in its
	// own WSDL ("All methods invoked as part of the conversation must be
	// named in the server's WSDL").
	method := "call"
	if c.role == RoleServer {
		if _, ok := c.def.Callbacks[op]; !ok {
			return nil, fmt.Errorf("%w: callback %q not declared by %s", ErrNoSuchOperation, op, c.Service)
		}
		method = "callback"
	}
	if !wantReply {
		if c.role == RoleClient {
			method = "oneway"
		}
	}
	e := wire.NewEncoder(64 + len(payload))
	e.String(c.ID)
	e.String(op)
	e.Bytes2(payload)
	return c.port.invoke(ctx, c.peerAddr(), method, e.Bytes())
}

// peerAddr resolves where the other side of the conversation lives: the
// server side extracts the client's location from the conversation ID (the
// §4 location-embedding technique); the client side remembers the server.
func (c *Conversation) peerAddr() string {
	if c.role == RoleServer {
		if loc, ok := LocationOf(c.ID); ok {
			return loc
		}
	}
	return c.Peer
}

// Finish ends the conversation on both sides.
func (c *Conversation) Finish(ctx context.Context) error {
	e := wire.NewEncoder(32)
	e.String(c.ID)
	_, err := c.port.invoke(ctx, c.peerAddr(), "finish", e.Bytes())
	c.port.dropConv(c.ID)
	return err
}

func (p *Port) dropConv(id string) {
	p.mu.Lock()
	delete(p.convs, id)
	p.mu.Unlock()
	if p.fs != nil {
		_ = p.fs.Delete(convRegion, id)
	}
}

// Conversations reports the number of live conversation objects on this
// port (both roles).
func (p *Port) Conversations() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.convs)
}

// persist writes a durable conversation's state after an operation.
func (p *Port) persist(c *Conversation) {
	if p.fs == nil || c.def == nil || !c.def.Durable {
		return
	}
	c.mu.Lock()
	e := wire.NewEncoder(128)
	e.String(c.Service)
	e.Int(len(c.state))
	for k, v := range c.state {
		e.String(k)
		e.String(v)
	}
	body := e.Bytes()
	c.mu.Unlock()
	_ = p.fs.Put(convRegion, c.ID, body)
}

// Recover reloads durable conversations after a restart. In-memory
// conversations (and their queued messages) are gone — the intended unit
// of failure.
func (p *Port) Recover() int {
	if p.fs == nil {
		return 0
	}
	n := 0
	for _, id := range p.fs.Keys(convRegion) {
		raw, _ := p.fs.Get(convRegion, id)
		d := wire.NewDecoder(raw)
		service := d.String()
		cnt := d.Int()
		if d.Err() != nil {
			continue
		}
		state := make(map[string]string, cnt)
		for i := 0; i < cnt; i++ {
			k := d.String()
			state[k] = d.String()
		}
		p.mu.Lock()
		def := p.services[service]
		if def != nil {
			p.convs[id] = &Conversation{
				ID: id, Service: service, role: RoleServer, port: p, def: def, state: state,
			}
			n++
		}
		p.mu.Unlock()
	}
	return n
}

// rmiService is the wire surface between ports.
func (p *Port) rmiService() *rmi.Service {
	findConv := func(id string) (*Conversation, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		c, ok := p.convs[id]
		if !ok {
			return nil, &rmi.AppError{Msg: ErrNoConversation.Error() + ": " + id}
		}
		return c, nil
	}
	return &rmi.Service{
		Name: ServiceRMIName,
		Methods: map[string]rmi.MethodSpec{
			// start: create the server side of a conversation.
			"start": {Handler: func(ctx context.Context, call *rmi.Call) ([]byte, error) {
				d := wire.NewDecoder(call.Args)
				service, id := d.String(), d.String()
				if err := d.Err(); err != nil {
					return nil, err
				}
				p.mu.Lock()
				def, ok := p.services[service]
				p.mu.Unlock()
				if !ok {
					return nil, &rmi.AppError{Msg: "wsdl: no such service: " + service}
				}
				c := &Conversation{
					ID: id, Service: service, role: RoleServer, port: p, def: def,
					state: make(map[string]string),
				}
				p.mu.Lock()
				p.convs[id] = c
				p.mu.Unlock()
				if def.OnStart != nil {
					def.OnStart(c)
				}
				p.persist(c)
				p.reg.Counter("ws.conversations_started").Inc()
				return nil, nil
			}},
			// call: client-invoked request-response operation.
			"call": {Handler: func(ctx context.Context, call *rmi.Call) ([]byte, error) {
				return p.dispatchOperation(call.Args, true)
			}},
			// oneway: client-invoked one-way operation.
			"oneway": {Handler: func(ctx context.Context, call *rmi.Call) ([]byte, error) {
				return p.dispatchOperation(call.Args, false)
			}},
			// callback: server-invoked operation on the client side,
			// dispatched to the conversation OBJECT's own handlers.
			"callback": {Handler: func(ctx context.Context, call *rmi.Call) ([]byte, error) {
				d := wire.NewDecoder(call.Args)
				id, op := d.String(), d.String()
				payload := d.Bytes()
				if err := d.Err(); err != nil {
					return nil, err
				}
				c, err := findConv(id)
				if err != nil {
					return nil, err
				}
				c.mu.Lock()
				h, ok := c.callbacks[op]
				c.mu.Unlock()
				if !ok {
					return nil, &rmi.AppError{Msg: fmt.Sprintf("wsdl: conversation %s has no callback %q", id, op)}
				}
				p.reg.Counter("ws.callbacks").Inc()
				out, err := h(c, payload)
				if err != nil {
					return nil, &rmi.AppError{Msg: err.Error()}
				}
				return out, nil
			}},
			// import: receive a migrating conversation (§4 migration).
			"import": {Handler: func(ctx context.Context, call *rmi.Call) ([]byte, error) {
				if _, err := p.Import(call.Args); err != nil {
					return nil, &rmi.AppError{Msg: err.Error()}
				}
				return nil, nil
			}},
			// finish: tear down the peer's side.
			"finish": {Idempotent: true, Handler: func(ctx context.Context, call *rmi.Call) ([]byte, error) {
				d := wire.NewDecoder(call.Args)
				id := d.String()
				if err := d.Err(); err != nil {
					return nil, err
				}
				p.dropConv(id)
				return nil, nil
			}},
		},
	}
}

// dispatchOperation runs a client-invoked operation on the server side.
func (p *Port) dispatchOperation(args []byte, wantReply bool) ([]byte, error) {
	d := wire.NewDecoder(args)
	id, op := d.String(), d.String()
	payload := d.Bytes()
	if err := d.Err(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	c, ok := p.convs[id]
	p.mu.Unlock()
	if !ok {
		return nil, &rmi.AppError{Msg: ErrNoConversation.Error() + ": " + id}
	}
	operation, ok := c.def.Operations[op]
	if !ok {
		return nil, &rmi.AppError{Msg: ErrNoSuchOperation.Error() + ": " + op}
	}
	p.reg.Counter("ws.operations").Inc()
	if !wantReply && operation.Kind == OneWay {
		// One-way with in-memory queueing semantics: handler runs inline
		// here (the queue is the transport); a nil handler parks the
		// payload in the conversation's inbox.
		if operation.Handler == nil {
			c.mu.Lock()
			c.inbox = append(c.inbox, queued{op: op, payload: payload})
			c.mu.Unlock()
			return nil, nil
		}
	}
	out, err := operation.Handler(c, payload)
	if err != nil {
		return nil, &rmi.AppError{Msg: err.Error()}
	}
	p.persist(c)
	return out, nil
}

// Inbox drains queued one-way payloads for an operation (server side).
func (c *Conversation) Inbox(op string) [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out [][]byte
	rest := c.inbox[:0]
	for _, q := range c.inbox {
		if q.op == op {
			out = append(out, q.payload)
		} else {
			rest = append(rest, q)
		}
	}
	c.inbox = rest
	return out
}
