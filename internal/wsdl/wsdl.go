// Package wsdl implements the server-to-server programming model of §4:
// WSDL's four operation types unifying synchronous RPC with asynchronous
// messaging, one-on-one conversations with explicit callbacks, subordinate
// conversations with isolated interfaces (Figure 4), and both durable and
// in-memory conversational state.
//
// Key behaviours taken from the paper:
//
//   - "A server offers a WSDL service and a client initiates a one-on-one
//     conversation with the server. All methods invoked as part of the
//     conversation must be named in the server's WSDL. In particular,
//     within the conversation, the server may asynchronously contact the
//     client using one of the specified callbacks, but not by invoking a
//     new service on the client."
//   - Conversation IDs embed their creator's location ("location embedding
//     will be possible only at the point the conversation ID is created,
//     which will generally occur on the client"), which is how callbacks
//     find the client side of a conversation.
//   - Subordinate conversations get "a separate but dependent object", so
//     "callbacks from C" are never "accessible as call-ins from A", and
//     multiple subordinates of the same service type are unambiguous.
//   - In-memory conversations queue their in/outbound asynchronous
//     messages in memory with the conversation — "a nice unit of failure
//     in that the conversation and its messages are lost together";
//     durable conversations persist state to the middle-tier filestore.
package wsdl

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"wls/internal/filestore"
	"wls/internal/metrics"
	"wls/internal/rmi"
)

// OpKind is one of WSDL's four operation types.
type OpKind int

// The four WSDL operation types (§4).
const (
	// OneWay: receive a message.
	OneWay OpKind = iota
	// RequestResponse: receive a message and send a correlated message.
	RequestResponse
	// SolicitResponse: send a message and receive a correlated message
	// (a callback with a result).
	SolicitResponse
	// Notification: send a message (a fire-and-forget callback).
	Notification
)

func (k OpKind) String() string {
	switch k {
	case OneWay:
		return "one-way"
	case RequestResponse:
		return "request-response"
	case SolicitResponse:
		return "solicit-response"
	case Notification:
		return "notification"
	default:
		return "unknown"
	}
}

// Errors.
var (
	// ErrNoSuchOperation is returned for methods not named in the WSDL.
	ErrNoSuchOperation = errors.New("wsdl: operation not in service definition")
	// ErrNoConversation means the conversation is unknown at the target
	// (e.g. an in-memory conversation lost to a crash).
	ErrNoConversation = errors.New("wsdl: no such conversation")
)

// Handler processes an inbound operation or callback within a
// conversation. For RequestResponse/SolicitResponse the returned bytes are
// the correlated reply.
type Handler func(c *Conversation, payload []byte) ([]byte, error)

// Operation declares one operation of a service.
type Operation struct {
	Kind    OpKind
	Handler Handler
}

// ServiceDef is a WSDL service: the operations clients may invoke and the
// callbacks the service may invoke on its clients.
type ServiceDef struct {
	// Name is the service name.
	Name string
	// Operations are the client-invocable methods (OneWay or
	// RequestResponse).
	Operations map[string]Operation
	// Callbacks names the methods this service may call back on the
	// client (SolicitResponse or Notification). Callbacks not declared
	// here are rejected at Send time — the interface is centralized in
	// the server's WSDL.
	Callbacks map[string]OpKind
	// Durable persists conversation state to the port's filestore after
	// every operation; in-memory conversations are lost with the server.
	Durable bool
	// OnStart initializes a new server-side conversation.
	OnStart func(c *Conversation)
}

// ServiceRMIName is the RMI service carrying Web Services traffic.
const ServiceRMIName = "wls.ws"

// Port is one process's Web Services runtime: it hosts services (server
// role) and client-side conversation endpoints (client role) on one node.
type Port struct {
	node rmi.Node
	reg  *metrics.Registry
	fs   *filestore.FileStore // nil = in-memory conversations only

	mu       sync.Mutex
	services map[string]*ServiceDef
	convs    map[string]*Conversation
	seq      uint64
}

// NewPort creates a Web Services runtime on a server's RMI registry. fs
// may be nil when only in-memory conversations are needed.
func NewPort(registry *rmi.Registry, fs *filestore.FileStore) *Port {
	p := &Port{
		node:     registry.Node(),
		reg:      registry.Metrics(),
		fs:       fs,
		services: make(map[string]*ServiceDef),
		convs:    make(map[string]*Conversation),
	}
	registry.Register(p.rmiService())
	return p
}

// Offer deploys a service on this port.
func (p *Port) Offer(def *ServiceDef) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.services[def.Name] = def
}

// Addr returns the port's node address.
func (p *Port) Addr() string { return p.node.Addr() }

// Role distinguishes the two sides of a conversation.
type Role int

// Conversation roles.
const (
	RoleClient Role = iota
	RoleServer
)

// Conversation is one side of a one-on-one conversation. Both sides
// maintain state on its behalf (§4).
type Conversation struct {
	// ID is globally unique and embeds the client's address.
	ID string
	// Service names the WSDL service this conversation belongs to.
	Service string
	// Peer is the other side's address.
	Peer string

	role Role
	port *Port
	def  *ServiceDef // server side only

	mu    sync.Mutex
	state map[string]string
	// callbacks are the client-side handlers for server-initiated
	// operations; they are per-conversation-object, which is exactly the
	// Fig 4 isolation property.
	callbacks map[string]Handler
	// inbox holds undelivered one-way payloads for in-memory queueing.
	inbox []queued
	done  bool
}

type queued struct {
	op      string
	payload []byte
}

// Get reads conversation state.
func (c *Conversation) Get(key string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state[key]
}

// Set writes conversation state (persisted after the current operation for
// durable conversations).
func (c *Conversation) Set(key, value string) {
	c.mu.Lock()
	c.state[key] = value
	c.mu.Unlock()
}

// Role reports which side this object is.
func (c *Conversation) Role() Role { return c.role }

// convID creation: "<creator-addr>|conv|<n>" — the address prefix is the
// location embedding.
func (p *Port) newConvID() string {
	p.mu.Lock()
	p.seq++
	n := p.seq
	p.mu.Unlock()
	return fmt.Sprintf("%s|conv|%d", p.node.Addr(), n)
}

// LocationOf extracts the embedded creator location from a conversation ID.
func LocationOf(convID string) (string, bool) {
	i := strings.Index(convID, "|conv|")
	if i < 0 {
		return "", false
	}
	return convID[:i], true
}
