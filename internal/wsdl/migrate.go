package wsdl

import (
	"context"
	"fmt"

	"wls/internal/wire"
)

// Conversation migration (§4): "Conversation migration is needed to
// support primary/secondary replication as well as to optimize the overall
// system around its most active participants. Since a conversation may
// have several simultaneous users, migration requires that conversations
// be implemented as on-demand singleton services."
//
// Migrate moves the server side of a conversation from one port to
// another: the state is exported, imported at the destination, and the
// source forgets it. In a full deployment the on-demand singleton lease
// for the conversation (see internal/singleton.OnDemand) serializes
// concurrent migrations and lets other participants locate the new owner;
// here the mechanics of the move itself are implemented and the client is
// re-bound explicitly with Rebind.

// Export serializes a server-side conversation's identity and state.
func (p *Port) Export(convID string) ([]byte, error) {
	p.mu.Lock()
	c, ok := p.convs[convID]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoConversation, convID)
	}
	if c.role != RoleServer {
		return nil, fmt.Errorf("wsdl: only server-side conversations migrate")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := wire.NewEncoder(128)
	e.String(c.ID)
	e.String(c.Service)
	e.Int(len(c.state))
	for k, v := range c.state {
		e.String(k)
		e.String(v)
	}
	return e.Bytes(), nil
}

// Import installs an exported conversation on this port. The service must
// already be offered here.
func (p *Port) Import(data []byte) (*Conversation, error) {
	d := wire.NewDecoder(data)
	id, service := d.String(), d.String()
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	state := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := d.String()
		state[k] = d.String()
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	def, ok := p.services[service]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("wsdl: service %s not offered on this port", service)
	}
	c := &Conversation{ID: id, Service: service, role: RoleServer, port: p, def: def, state: state}
	p.convs[id] = c
	p.mu.Unlock()
	p.persist(c)
	return c, nil
}

// Drop removes a conversation from this port without notifying the peer
// (used by the source side of a migration).
func (p *Port) Drop(convID string) { p.dropConv(convID) }

// Migrate moves the server side of convID from p to the port at dstAddr,
// which must offer the same service. It uses the destination's RMI surface
// so the two ports may be on different servers.
func (p *Port) Migrate(ctx context.Context, convID, dstAddr string) error {
	data, err := p.Export(convID)
	if err != nil {
		return err
	}
	if _, err := p.invoke(ctx, dstAddr, "import", data); err != nil {
		return err
	}
	p.Drop(convID)
	return nil
}

// Rebind points the client side of a conversation at the service's new
// location after a migration. (In a full deployment the client discovers
// this through the conversation's on-demand singleton lease; the paper
// also anticipates "a general-purpose biscuit that each side is expected
// to echo to the other".)
func (c *Conversation) Rebind(newPeer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Peer = newPeer
}
