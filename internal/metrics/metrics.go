// Package metrics provides the lightweight counters and latency histograms
// used by the benchmark harness and by the server's monitoring subsystem
// (the paper's §5.1 notes that monitoring/auditing data is a first-class
// category of middle-tier data).
//
// The histogram uses fixed log-scaled buckets so recording is a single
// atomic increment; percentile queries interpolate within a bucket. That is
// accurate enough for the "shape" comparisons the experiment harness makes
// and keeps the hot path allocation-free.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// ---------------------------------------------------------------------------
// Histogram

// numBuckets covers 1ns .. ~17.6s with ~4.3% relative error (16 buckets per
// power of two, 34 powers).
const (
	bucketsPerOctave = 16
	numOctaves       = 34
	numBuckets       = bucketsPerOctave*numOctaves + 1
)

// Histogram records durations (or any non-negative int64 values) into
// log-scaled buckets. The zero value is ready to use and safe for
// concurrent recording.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64 // stored as -min to allow CAS from zero; see Record
	hasMin  atomic.Bool
	mu      sync.Mutex // serializes min updates only
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 1 {
		return 0
	}
	lg := math.Log2(float64(v))
	idx := int(lg * bucketsPerOctave)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketLower returns the lower bound of bucket i.
func bucketLower(i int) int64 {
	return int64(math.Pow(2, float64(i)/bucketsPerOctave))
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	if !h.hasMin.Load() || v < h.min.Load() {
		h.mu.Lock()
		if !h.hasMin.Load() || v < h.min.Load() {
			h.min.Store(v)
			h.hasMin.Store(true)
		}
		h.mu.Unlock()
	}
}

// RecordDuration records d in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() int64 {
	if !h.hasMin.Load() {
		return 0
	}
	return h.min.Load()
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n-1))
	var seen int64
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if seen+c > rank {
			// Interpolate within the bucket.
			lo := bucketLower(i)
			hi := bucketLower(i + 1)
			if hi <= lo {
				return lo
			}
			frac := float64(rank-seen) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += c
	}
	return h.max.Load()
}

// P50, P95, P99, P999 are convenience accessors.
func (h *Histogram) P50() int64  { return h.Quantile(0.50) }
func (h *Histogram) P95() int64  { return h.Quantile(0.95) }
func (h *Histogram) P99() int64  { return h.Quantile(0.99) }
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// MeanDuration returns the mean as a time.Duration.
func (h *Histogram) MeanDuration() time.Duration { return time.Duration(h.Mean()) }

// String summarizes the histogram for harness output.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(),
		time.Duration(h.Mean()).Round(time.Microsecond),
		time.Duration(h.P50()).Round(time.Microsecond),
		time.Duration(h.P95()).Round(time.Microsecond),
		time.Duration(h.P99()).Round(time.Microsecond),
		time.Duration(h.Max()).Round(time.Microsecond))
}

// ---------------------------------------------------------------------------
// Registry

// Registry is a named collection of metrics, one per server, that the admin
// tooling can snapshot.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// MetricValue is one named metric in a Snapshot. Kind is "counter",
// "gauge", or "hist"; Value carries the counter/gauge value (the
// observation count for histograms); Hist is set for histograms only.
type MetricValue struct {
	Kind  string
	Name  string
	Value int64
	Hist  *HistogramSummary
}

// HistogramSummary is the percentile digest of one histogram, in the
// histogram's native units (nanoseconds for latencies).
type HistogramSummary struct {
	Count                    int64
	Mean                     float64
	Min, P50, P95, P99, P999 int64
	Max                      int64
}

// Summary digests the histogram.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.P50(),
		P95:   h.P95(),
		P99:   h.P99(),
		P999:  h.P999(),
		Max:   h.Max(),
	}
}

// Snapshot returns a stable-ordered structured dump of every metric:
// sorted by name, then kind, so two snapshots of the same registry state
// are identical element for element. RenderText turns it into the
// human-readable form served by the admin tooling.
func (r *Registry) Snapshot() []MetricValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricValue, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, MetricValue{Kind: "counter", Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, MetricValue{Kind: "gauge", Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		s := h.Summary()
		out = append(out, MetricValue{Kind: "hist", Name: name, Value: s.Count, Hist: &s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// RenderText renders a snapshot one metric per line, aligned for
// terminals (the `wlsadmin metrics` output format).
func RenderText(snap []MetricValue) string {
	width := 0
	for _, m := range snap {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	var b strings.Builder
	for _, m := range snap {
		switch m.Kind {
		case "hist":
			h := m.Hist
			fmt.Fprintf(&b, "hist    %-*s n=%d mean=%v p50=%v p95=%v p99=%v p999=%v max=%v\n",
				width, m.Name, h.Count,
				time.Duration(h.Mean).Round(time.Microsecond),
				time.Duration(h.P50).Round(time.Microsecond),
				time.Duration(h.P95).Round(time.Microsecond),
				time.Duration(h.P99).Round(time.Microsecond),
				time.Duration(h.P999).Round(time.Microsecond),
				time.Duration(h.Max).Round(time.Microsecond))
		default:
			fmt.Fprintf(&b, "%-7s %-*s %d\n", m.Kind, width, m.Name, m.Value)
		}
	}
	return b.String()
}
