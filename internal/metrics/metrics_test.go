package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("Value = %d, want 7", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1000 {
		t.Fatalf("Min = %d, want 1000", h.Min())
	}
	if h.Max() != 100000 {
		t.Fatalf("Max = %d, want 100000", h.Max())
	}
	if got, want := h.Mean(), 50500.0; math.Abs(got-want) > 1 {
		t.Fatalf("Mean = %f, want %f", got, want)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 10000; i++ {
		h.Record(i)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 5000}, {0.95, 9500}, {0.99, 9900}} {
		got := h.Quantile(tc.q)
		// Log-bucketed: allow ~10% relative error.
		if math.Abs(float64(got-tc.want)) > 0.10*float64(tc.want) {
			t.Errorf("Quantile(%v) = %d, want ~%d", tc.q, got, tc.want)
		}
	}
}

func TestHistogramEmptyAndClamping(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Record(-5) // clamped to 0
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatalf("negative record: min=%d count=%d", h.Min(), h.Count())
	}
	h.Record(100)
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("out-of-range quantiles must clamp monotonically")
	}
}

func TestHistogramPropertyQuantileWithinRange(t *testing.T) {
	f := func(vals []uint16, qRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		var lo, hi int64 = math.MaxInt64, 0
		for _, v := range vals {
			h.Record(int64(v))
			if int64(v) < lo {
				lo = int64(v)
			}
			if int64(v) > hi {
				hi = int64(v)
			}
		}
		q := float64(qRaw) / 255
		got := h.Quantile(q)
		// Estimate may overshoot hi by bucket interpolation, but never by
		// more than one bucket width (~9%) and never undershoot lo's bucket.
		return got >= 0 && float64(got) <= float64(hi)*1.10+1 && h.Min() == lo && h.Max() == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRecordDuration(t *testing.T) {
	var h Histogram
	h.RecordDuration(5 * time.Millisecond)
	if h.Count() != 1 || h.Max() != int64(5*time.Millisecond) {
		t.Fatalf("RecordDuration not recorded: %s", h.String())
	}
	if h.MeanDuration() != 5*time.Millisecond {
		t.Fatalf("MeanDuration = %v", h.MeanDuration())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= 1000; j++ {
				h.Record(int64(j))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("requests")
	c1.Inc()
	c2 := r.Counter("requests")
	if c2.Value() != 1 {
		t.Fatal("registry must return the same counter instance per name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge identity")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram identity")
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("z").Set(9)
	r.Histogram("lat").Record(100)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		a, b := snap[i-1], snap[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Kind > b.Kind) {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
	if snap[0].Name != "a" || snap[0].Kind != "counter" || snap[0].Value != 2 {
		t.Fatalf("snap[0] = %+v", snap[0])
	}
	var hist *MetricValue
	for i := range snap {
		if snap[i].Kind == "hist" {
			hist = &snap[i]
		}
	}
	if hist == nil || hist.Name != "lat" || hist.Hist == nil || hist.Hist.Count != 1 {
		t.Fatalf("histogram entry wrong: %+v", hist)
	}
}

func TestSnapshotStableAcrossCalls(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"q", "a", "m", "z", "b"} {
		r.Counter(n).Inc()
		r.Gauge("g." + n).Set(1)
		r.Histogram("h." + n).Record(10)
	}
	s1, s2 := r.Snapshot(), r.Snapshot()
	if len(s1) != len(s2) {
		t.Fatalf("lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || s1[i].Kind != s2[i].Kind || s1[i].Value != s2[i].Value {
			t.Fatalf("element %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestRenderText(t *testing.T) {
	r := NewRegistry()
	r.Counter("rmi.requests").Add(7)
	r.Gauge("pool.size").Set(3)
	h := r.Histogram("lat")
	for i := 0; i < 1000; i++ {
		h.Record(int64(i))
	}
	out := RenderText(r.Snapshot())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "hist    lat") || !strings.Contains(lines[0], "p999=") {
		t.Fatalf("hist line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "pool.size") || !strings.Contains(lines[1], "3") {
		t.Fatalf("gauge line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "rmi.requests") || !strings.Contains(lines[2], "7") {
		t.Fatalf("counter line: %q", lines[2])
	}
}

func TestP999(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 10000; i++ {
		h.Record(int64(i))
	}
	p99, p999, max := h.P99(), h.P999(), h.Max()
	if p999 < p99 {
		t.Fatalf("p999 %d < p99 %d", p999, p99)
	}
	// Bucket interpolation may overshoot max by up to one bucket (~9%).
	if float64(p999) > float64(max)*1.10 {
		t.Fatalf("p999 %d far above max %d", p999, max)
	}
	// ~4.3% bucket error: the true p999 of 1..10000 is 9991.
	if p999 < 9000 {
		t.Fatalf("p999 = %d, want ≈9991", p999)
	}
}

func TestBucketMonotonicity(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		lo := bucketLower(i)
		if lo < prev {
			t.Fatalf("bucketLower not monotone at %d: %d < %d", i, lo, prev)
		}
		prev = lo
	}
	if bucketIndex(0) != 0 || bucketIndex(1) != 0 {
		t.Fatal("small values must land in bucket 0")
	}
	if bucketIndex(math.MaxInt64) != numBuckets-1 {
		t.Fatal("huge values must clamp to the last bucket")
	}
}
