package wls_test

// Pool-recycling stress: requests, responses, and sessions are recycled
// through sync.Pools across the webtier and servlet tiers, so the bug
// class to guard against is cross-request state bleed — caller A observing
// caller B's body, session value, or session identity after an object was
// released and reissued. These tests hammer the full path concurrently
// (run under -race in CI) and assert every response belongs to the request
// that asked for it.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"wls"
	"wls/internal/servlet"
)

// TestPoolRecyclingNoCrossRequestBleed drives many concurrent callers,
// each with its own session, through the proxy plug-in. The servlet echoes
// the body and stamps the session with the caller's identity; a recycled
// Request, Session, or response buffer that leaked between callers shows
// up as a foreign tag or a corrupted echo.
func TestPoolRecyclingNoCrossRequestBleed(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 3, RealClock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for _, s := range c.Servers {
		s.Web.Handle("/tag", func(r *servlet.Request) servlet.Response {
			owner := string(r.Body)
			prev := r.Session.Get("owner")
			if prev == "" {
				r.Session.Set("owner", owner)
				prev = owner
			}
			// Echo "<session-owner>:<request-body>": the caller checks both
			// halves, so a stale session or a recycled body buffer is loud.
			return servlet.Response{Body: []byte(prev + ":" + owner)}
		})
	}
	c.Settle(2)
	proxy := c.ProxyPlugin("webserver:80")

	const callers = 16
	const reqs = 150
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for id := 0; id < callers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			me := fmt.Sprintf("caller-%d", id)
			body := []byte(me)
			want := me + ":" + me
			ctx := context.Background()
			cookie := ""
			for i := 0; i < reqs; i++ {
				resp, err := proxy.Route(ctx, "/tag", cookie, body)
				if err != nil {
					errs <- fmt.Errorf("%s req %d: %v", me, i, err)
					return
				}
				cookie = resp.Cookie
				if got := string(resp.Body); got != want {
					errs <- fmt.Errorf("%s req %d: cross-request bleed: got %q, want %q", me, i, got, want)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolRecyclingResponseBodyOwnership pins the response-ownership
// contract at the webtier boundary: the bytes returned by Route remain
// valid after the pooled call/response objects behind them are recycled by
// later requests. A pool that handed the same backing buffer to the next
// request would corrupt the held response.
func TestPoolRecyclingResponseBodyOwnership(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 3, RealClock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for _, s := range c.Servers {
		s.Web.Handle("/echo", func(r *servlet.Request) servlet.Response {
			return servlet.Response{Body: r.Body}
		})
	}
	c.Settle(2)
	proxy := c.ProxyPlugin("webserver:80")
	ctx := context.Background()

	held, err := proxy.Route(ctx, "/echo", "", []byte("held-response"))
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), held.Body...)
	cookie := held.Cookie
	for i := 0; i < 256; i++ {
		if _, err := proxy.Route(ctx, "/echo", cookie, []byte(fmt.Sprintf("overwrite-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(held.Body, snapshot) {
		t.Fatalf("held response mutated by later requests: %q", held.Body)
	}
}
