// Package wls is a Go reproduction of the distributed computing
// architecture of BEA WebLogic Server as described in Dean Jacobs,
// "Distributed Computing with BEA WebLogic Server", CIDR 2003.
//
// The package is the public façade over the substrates in internal/: it
// boots a cluster of application servers — either on an in-process
// simulated network with a virtual clock (deterministic, used by the tests,
// benchmarks and examples) or on real TCP sockets — and exposes each
// server's containers:
//
//   - EJB: stateless/stateful/entity beans (§3.1–3.3)
//   - Web: the servlet engine with replicated sessions and JSP caching
//   - JMS: queues, transactional messaging, store-and-forward
//   - WS: WSDL-style conversations with callbacks (§4)
//   - Tx: the distributed transaction manager
//   - Files: the middle-tier persistence layer (§5.1)
//
// plus the cluster-level machinery: lease-based singletons, the
// presentation-tier routers of Figures 2–3, external tightly-coupled
// clients, and warehouse-style ETL (§5.2).
package wls

import (
	"fmt"
	"path/filepath"
	"time"

	"wls/internal/cluster"
	"wls/internal/core"
	"wls/internal/ejb"
	"wls/internal/filestore"
	"wls/internal/gossip"
	"wls/internal/jms"
	"wls/internal/lease"
	"wls/internal/metrics"
	"wls/internal/naming"
	"wls/internal/netsim"
	"wls/internal/partition"
	"wls/internal/rmi"
	"wls/internal/servlet"
	"wls/internal/singleton"
	"wls/internal/store"
	"wls/internal/trace"
	"wls/internal/tx"
	"wls/internal/vclock"
	"wls/internal/webtier"
	"wls/internal/wsdl"
)

// Options configures a cluster.
type Options struct {
	// Servers is the cluster size (default 3).
	Servers int
	// ClusterName defaults to "cluster".
	ClusterName string
	// RealClock uses the wall clock instead of a virtual one. Virtual is
	// the default: deterministic, and time only advances via Advance.
	RealClock bool
	// DataDir, when set, gives every server a middle-tier filestore under
	// it (enabling durable JMS, durable conversations, tx logs, local
	// config replicas).
	DataDir string
	// Sessions selects the servlet session-state option.
	Sessions servlet.SessionMode
	// ServersPerMachine controls machine placement (default 1).
	ServersPerMachine int
	// ReplicationGroups/PreferredSecondaryGroups configure §3.2 placement.
	ReplicationGroups        []string
	PreferredSecondaryGroups []string
	// WithAdmin adds a dedicated admin server hosting the lease manager
	// (required for singleton services).
	WithAdmin bool
	// LeaseTTL is the singleton grace period (default 1s).
	LeaseTTL time.Duration
	// Seed drives all simulation randomness.
	Seed int64
	// TraceSample enables distributed tracing: every server (and every
	// router built from the cluster) gets a tracer exporting into one
	// shared ring. 0 disables tracing entirely (the default — no tracers
	// are created, keeping the hot paths allocation-free); 1 samples every
	// root; a fraction samples deterministically (counter-based, no RNG).
	TraceSample float64
	// TraceBuffer is the shared span ring capacity (default 4096).
	TraceBuffer int
	// Admission, when set, gives every server an execute queue (§2.3) that
	// all non-system RMI requests pass through; with Policy core.Deny a
	// full queue refuses requests with a wire-level BUSY response that
	// stubs treat as side-effect-free and fail over from.
	Admission *core.QueueConfig
	// Resilience, when set, gives every server a shared client-side
	// overload-protection layer — retry token bucket, capped jittered
	// backoff, per-server circuit breakers — which Server.Stub wires into
	// every stub it creates (routers built from the cluster get their own).
	Resilience *rmi.ResilienceConfig
	// Partition, when set, gives every managed server an epoch-versioned
	// consistent-hash ring over the live servlet tier: session secondaries
	// are ring-placed (and re-ship on membership changes), entity-bean
	// homes become computable on every server, and
	// Server.PartitionedSingletonHost places singletons by ring ownership.
	Partition *partition.Config
}

// Cluster is a running group of application servers plus the shared
// persistence tier.
type Cluster struct {
	opts Options
	fix  *fixture

	// DB is the shared backend database (the persistence tier).
	DB *store.Store
	// Servers are the managed servers (excluding the admin server).
	Servers []*Server
	// Admin is the admin server (nil unless WithAdmin).
	Admin *Server
	// Leases is the lease manager (nil unless WithAdmin).
	Leases *lease.Manager

	traces  *trace.Ring // shared span ring (nil unless TraceSample > 0)
	nextIdx int         // next free address index (AddServer scale-out)
}

// Server is one application server.
type Server struct {
	Name string

	cluster  *Cluster
	endpoint *netsim.Endpoint
	member   *cluster2Member
	registry *rmi.Registry
	reg      *metrics.Registry
	tracer   *trace.Tracer      // nil unless Options.TraceSample > 0
	queue    *core.ExecuteQueue // nil unless Options.Admission
	res      *rmi.Resilience    // nil unless Options.Resilience
	resSeed  int64              // per-server jitter seed (survives Restart)
	parts    *partition.Views   // nil unless Options.Partition

	// Tx is the server's transaction manager.
	Tx *tx.Manager
	// EJB is the server's EJB container.
	EJB *ejb.Container
	// Web is the server's servlet engine.
	Web *servlet.Engine
	// JMS is the server's message broker.
	JMS *jms.Broker
	// WS is the server's Web Services port.
	WS *wsdl.Port
	// Files is the server's middle-tier filestore (nil without DataDir).
	Files *filestore.FileStore
	// Naming is the server's view of the cluster JNDI namespace.
	Naming *naming.Context
	// Health is the server's health monitor and lifecycle (§3.4), exposed
	// cluster-wide as the wls.health service.
	Health *core.HealthMonitor
}

// cluster2Member aliases to keep struct fields tidy.
type cluster2Member = cluster.Member

// fixture is the simulation plumbing (mirrors internal/simtest, duplicated
// here so the public package does not expose test helpers).
type fixture struct {
	clock  vclock.Clock
	vclk   *vclock.Virtual
	net    *netsim.Network
	bus    *gossip.InMemory
	cfg    cluster.Config
	admins []string
}

// New boots a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Servers == 0 {
		opts.Servers = 3
	}
	if opts.ClusterName == "" {
		opts.ClusterName = "cluster"
	}
	if opts.ServersPerMachine == 0 {
		opts.ServersPerMachine = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = time.Second
	}

	var clk vclock.Clock
	var vclk *vclock.Virtual
	if opts.RealClock {
		clk = vclock.System
	} else {
		vclk = vclock.NewVirtualAtZero()
		clk = vclk
	}
	fix := &fixture{
		clock: clk,
		vclk:  vclk,
		net:   netsim.New(clk, opts.Seed),
		bus:   gossip.NewInMemory(clk, opts.Seed),
		cfg: cluster.Config{
			Name:              opts.ClusterName,
			HeartbeatInterval: 100 * time.Millisecond,
			FailureTimeout:    350 * time.Millisecond,
		},
	}
	if opts.TraceBuffer == 0 {
		opts.TraceBuffer = 4096
	}
	c := &Cluster{
		opts: opts,
		fix:  fix,
		DB:   store.New("backend", clk),
	}
	if opts.TraceSample > 0 {
		c.traces = trace.NewRing(opts.TraceBuffer)
	}

	total := opts.Servers
	if opts.WithAdmin {
		total++
	}
	for i := 0; i < total; i++ {
		isAdmin := opts.WithAdmin && i == opts.Servers
		name := fmt.Sprintf("server-%d", i+1)
		if isAdmin {
			name = "admin"
		}
		s, err := c.newServer(i, name, isAdmin)
		if err != nil {
			c.Stop()
			return nil, err
		}
		if isAdmin {
			c.Admin = s
			fix.admins = []string{s.endpoint.Addr()}
		} else {
			c.Servers = append(c.Servers, s)
		}
	}

	c.nextIdx = total

	if opts.WithAdmin {
		leaseTable := store.New("leasedb", clk)
		c.Leases = lease.NewManager(clk, lease.AlwaysLeader(), leaseTable, opts.LeaseTTL)
		c.Admin.registry.Register(c.Leases.RMIService())
		c.Leases.Start()
	}
	c.Settle(3)
	return c, nil
}

func (c *Cluster) newServer(i int, name string, isAdmin bool) (*Server, error) {
	fix := c.fix
	addr := fmt.Sprintf("10.0.0.%d:7001", i+1)
	machine := fmt.Sprintf("machine-%d", i/c.opts.ServersPerMachine+1)
	group := ""
	if len(c.opts.ReplicationGroups) > 0 {
		group = c.opts.ReplicationGroups[i%len(c.opts.ReplicationGroups)]
	}
	ep := fix.net.Endpoint(addr)
	reg := metrics.NewRegistry()
	member := cluster.NewMember(fix.cfg, fix.clock, fix.bus, cluster.MemberInfo{
		Name:                     name,
		Addr:                     addr,
		Machine:                  machine,
		ReplicationGroup:         group,
		PreferredSecondaryGroups: c.opts.PreferredSecondaryGroups,
	})
	registry := rmi.NewRegistry(ep, member, reg)
	member.Start()

	s := &Server{
		Name:     name,
		cluster:  c,
		endpoint: ep,
		member:   member,
		registry: registry,
		reg:      reg,
		Tx:       tx.NewManager(name, fix.clock, nil, reg),
		Naming:   naming.New(c.opts.ClusterName, name, fix.bus),
	}
	if c.opts.DataDir != "" {
		fs, err := filestore.Open(filepath.Join(c.opts.DataDir, name+".store"), filestore.Options{})
		if err != nil {
			return nil, fmt.Errorf("wls: filestore for %s: %w", name, err)
		}
		s.Files = fs
	}
	s.EJB = ejb.NewContainer(registry, s.Tx, c.DB, fix.bus)
	s.Web = servlet.NewEngine(registry, servlet.Config{Sessions: c.opts.Sessions, DB: c.DB})
	if c.opts.Partition != nil && !isAdmin {
		// Attach after the servlet engine registers, so the ring's very
		// first view already contains this server. The admin server also
		// advertises wls.http but must never own partitions: application
		// state lives on managed servers only.
		s.parts = partition.NewViews(*c.opts.Partition)
		partition.Attach(s.parts, member, servlet.ServiceName, "admin")
		s.Web.SetPartitions(s.parts)
		s.EJB.SetPartitions(s.parts)
	}
	s.JMS = jms.NewBroker(name, fix.clock, s.Files, reg)
	s.WS = wsdl.NewPort(registry, s.Files)
	s.Health = core.NewHealthMonitor()
	s.Health.SetLifecycle(core.LifecycleRunning)
	registry.Register(s.JMS.RMIService())
	registry.Register(s.Tx.Service())
	registry.Register(s.Health.Service())
	if s.tracer = c.newTracer(name); s.tracer != nil {
		registry.SetTracer(s.tracer)
	}
	if c.opts.Admission != nil {
		s.queue = core.NewExecuteQueue(*c.opts.Admission, fix.clock, reg)
		registry.SetAdmission(s.queue)
	}
	if c.opts.Resilience != nil {
		rc := *c.opts.Resilience
		s.resSeed = seedFor(c.seedBase(rc.Seed), name)
		rc.Seed = s.resSeed
		s.res = rmi.NewResilience(rc, fix.clock, reg)
	}
	return s, nil
}

// seedBase picks the base jitter seed: an explicit ResilienceConfig.Seed
// wins, otherwise the cluster seed.
func (c *Cluster) seedBase(explicit int64) int64 {
	if explicit != 0 {
		return explicit
	}
	return c.opts.Seed
}

// seedFor de-correlates backoff jitter across callers deterministically:
// each server/router mixes its name into the base seed, so concurrent
// retry waves de-synchronize while every (cluster seed, name) pair stays
// reproducible.
func seedFor(base int64, name string) int64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return base ^ int64(h)
}

// newTracer builds a tracer exporting into the cluster's shared ring, or
// nil when tracing is disabled.
func (c *Cluster) newTracer(name string) *trace.Tracer {
	if c.traces == nil {
		return nil
	}
	var sampler trace.Sampler
	if c.opts.TraceSample >= 1 {
		sampler = trace.Always()
	} else {
		sampler = trace.Ratio(c.opts.TraceSample)
	}
	return trace.New(name, c.fix.clock, trace.Options{Sampler: sampler, Exporter: c.traces})
}

// --- Server accessors -------------------------------------------------------

// Addr returns the server's transport address.
func (s *Server) Addr() string { return s.endpoint.Addr() }

// Member returns the server's cluster membership.
func (s *Server) Member() *cluster.Member { return s.member }

// Registry returns the server's RMI registry.
func (s *Server) Registry() *rmi.Registry { return s.registry }

// Node returns the server's transport node.
func (s *Server) Node() rmi.Node { return s.endpoint }

// Metrics returns the server's metric registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Tracer returns the server's tracer (nil unless Options.TraceSample > 0).
// Use it to start roots for internal-client work on this server.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Queue returns the server's execute queue (nil unless Options.Admission).
func (s *Server) Queue() *core.ExecuteQueue { return s.queue }

// Resilience returns the server's shared client-side resilience layer (nil
// unless Options.Resilience).
func (s *Server) Resilience() *rmi.Resilience { return s.res }

// Stub creates an internal-client stub for a clustered service. With
// Options.Resilience set, the stub shares the server's retry budget and
// breakers; explicit options may still override.
func (s *Server) Stub(service string, opts ...rmi.StubOption) *rmi.Stub {
	if s.res != nil {
		opts = append([]rmi.StubOption{rmi.WithResilience(s.res)}, opts...)
	}
	return rmi.NewStub(service, s.endpoint, rmi.MemberView{Member: s.member}, opts...)
}

// SingletonHost creates this server's candidacy for a continuous singleton
// service (requires Options.WithAdmin).
func (s *Server) SingletonHost(cfg singleton.Config, impl singleton.Activatable) *singleton.Host {
	return singleton.NewHost(cfg, s.member, s.registry, impl, s.cluster.fix.admins...)
}

// OnDemand creates this server's on-demand singleton family (requires
// Options.WithAdmin).
func (s *Server) OnDemand(family string, factory func(key string) singleton.Activatable) *singleton.OnDemand {
	return singleton.NewOnDemand(family, s.Name, s.cluster.fix.clock, s.endpoint, factory, s.cluster.fix.admins...)
}

// --- Cluster operations --------------------------------------------------------

// Clock returns the cluster clock.
func (c *Cluster) Clock() vclock.Clock { return c.fix.clock }

// VirtualClock returns the virtual clock (nil with RealClock).
func (c *Cluster) VirtualClock() *vclock.Virtual { return c.fix.vclk }

// Bus returns the announcement bus.
func (c *Cluster) Bus() *gossip.InMemory { return c.fix.bus }

// Net returns the simulated network fabric for failure injection.
func (c *Cluster) Net() *netsim.Network { return c.fix.net }

// Server returns the named server (including "admin"), or nil.
func (c *Cluster) Server(name string) *Server {
	if c.Admin != nil && c.Admin.Name == name {
		return c.Admin
	}
	for _, s := range c.Servers {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Settle advances through n heartbeat rounds so membership converges.
// Under the virtual clock each round also yields briefly in real time so
// background goroutines (lease renewals, SAF drains) keep pace with the
// advancing clock.
func (c *Cluster) Settle(n int) {
	for i := 0; i < n; i++ {
		if c.fix.vclk != nil {
			c.fix.vclk.Advance(c.fix.cfg.HeartbeatInterval)
			//wls:wallclock real yield so background goroutines keep pace with the advancing virtual clock
			time.Sleep(2 * time.Millisecond)
		} else {
			c.fix.clock.Sleep(c.fix.cfg.HeartbeatInterval)
		}
	}
}

// Advance moves the virtual clock (no-op with RealClock).
func (c *Cluster) Advance(d time.Duration) {
	if c.fix.vclk != nil {
		c.fix.vclk.Advance(d)
	} else {
		c.fix.clock.Sleep(d)
	}
}

// Crash kills a server: membership stops, its endpoint closes.
func (c *Cluster) Crash(name string) {
	s := c.Server(name)
	if s == nil {
		return
	}
	s.member.Stop()
	s.endpoint.Close()
}

// Freeze pauses a server without killing it: its endpoint stops processing
// traffic and its heartbeats stop, but its state survives — the §3.4
// split-brain scenario.
func (c *Cluster) Freeze(name string) {
	s := c.Server(name)
	if s == nil {
		return
	}
	s.member.Stop()
	c.fix.net.Freeze(s.endpoint.Addr(), true)
}

// Thaw resumes a frozen server.
func (c *Cluster) Thaw(name string) {
	s := c.Server(name)
	if s == nil {
		return
	}
	c.fix.net.Freeze(s.endpoint.Addr(), false)
	s.member.Start()
}

// Fence cuts a server off at the fabric level (router fencing, §3.4).
func (c *Cluster) Fence(name string, fenced bool) {
	if s := c.Server(name); s != nil {
		c.fix.net.Fence(s.endpoint.Addr(), fenced)
	}
}

// Partition breaks or heals the link between two named servers.
func (c *Cluster) Partition(a, b string, broken bool) {
	sa, sb := c.Server(a), c.Server(b)
	if sa != nil && sb != nil {
		c.fix.net.SetPartitioned(sa.endpoint.Addr(), sb.endpoint.Addr(), broken)
	}
}

// Restart brings a crashed server back with fresh containers (applications
// must be redeployed, as on a real reboot).
func (c *Cluster) Restart(name string) *Server {
	s := c.Server(name)
	if s == nil {
		return nil
	}
	ep := c.fix.net.Restart(s.endpoint.Addr())
	s.endpoint = ep
	if s.queue != nil {
		s.queue.Close()
		s.queue = nil
	}
	s.reg = metrics.NewRegistry()
	s.registry = rmi.NewRegistry(ep, s.member, s.reg)
	if c.opts.Admission != nil {
		s.queue = core.NewExecuteQueue(*c.opts.Admission, c.fix.clock, s.reg)
		s.registry.SetAdmission(s.queue)
	}
	if c.opts.Resilience != nil {
		// A rebooted server has no memory of old breaker state or banked
		// retry tokens; the jitter seed survives so timelines stay
		// reproducible.
		rc := *c.opts.Resilience
		rc.Seed = s.resSeed
		s.res = rmi.NewResilience(rc, c.fix.clock, s.reg)
	}
	s.Tx = tx.NewManager(s.Name, c.fix.clock, nil, s.reg)
	s.EJB = ejb.NewContainer(s.registry, s.Tx, c.DB, c.fix.bus)
	s.Web = servlet.NewEngine(s.registry, servlet.Config{Sessions: c.opts.Sessions, DB: c.DB})
	if s.parts != nil {
		// The views object survives the reboot (it is attached to the
		// member, which also survives); only the fresh containers need
		// re-wiring.
		s.Web.SetPartitions(s.parts)
		s.EJB.SetPartitions(s.parts)
	}
	s.JMS = jms.NewBroker(s.Name, c.fix.clock, s.Files, s.reg)
	s.WS = wsdl.NewPort(s.registry, s.Files)
	s.Health = core.NewHealthMonitor()
	s.Health.SetLifecycle(core.LifecycleRunning)
	s.registry.Register(s.JMS.RMIService())
	s.registry.Register(s.Tx.Service())
	s.registry.Register(s.Health.Service())
	if s.tracer != nil {
		// The tracer survives the reboot (same name, same clock); only the
		// fresh registry needs re-wiring.
		s.registry.SetTracer(s.tracer)
	}
	s.member.Start()
	return s
}

// ProxyPlugin builds a Fig 2 presentation-tier router with its own
// endpoint on the fabric.
func (c *Cluster) ProxyPlugin(addr string) *webtier.ProxyPlugin {
	node := c.fix.net.Endpoint(addr)
	p := webtier.NewProxyPlugin(node, rmi.MemberView{Member: c.Servers[0].member}, nil)
	if t := c.newTracer(addr); t != nil {
		p.SetTracer(t)
	}
	if r := c.newRouterResilience(addr); r != nil {
		p.SetResilience(r)
	}
	return p
}

// newRouterResilience builds a router-owned resilience layer (nil when
// Options.Resilience is unset). Routers do not share the servers' budgets:
// a router's view of a backend's health is its own.
func (c *Cluster) newRouterResilience(addr string) *rmi.Resilience {
	if c.opts.Resilience == nil {
		return nil
	}
	rc := *c.opts.Resilience
	rc.Seed = seedFor(c.seedBase(rc.Seed), addr)
	return rmi.NewResilience(rc, c.fix.clock, nil)
}

// ExternalLB builds a Fig 3 appliance router.
func (c *Cluster) ExternalLB(addr string) *webtier.ExternalLB {
	node := c.fix.net.Endpoint(addr)
	lb := webtier.NewExternalLB(node, rmi.MemberView{Member: c.Servers[0].member}, nil)
	if t := c.newTracer(addr); t != nil {
		lb.SetTracer(t)
	}
	if r := c.newRouterResilience(addr); r != nil {
		lb.SetResilience(r)
	}
	return lb
}

// ExternalClient creates a tightly-coupled external client (§2.2) with its
// own endpoint, bootstrapped from the first server.
func (c *Cluster) ExternalClient(addr string, refresh time.Duration) *rmi.ExternalClient {
	node := c.fix.net.Endpoint(addr)
	return rmi.NewExternalClient(node, c.fix.clock, refresh, c.Servers[0].endpoint.Addr())
}

// Traces returns the shared span ring (nil unless Options.TraceSample > 0).
func (c *Cluster) Traces() *trace.Ring { return c.traces }

// LeaseManagerAddrs returns the lease-manager addresses for singleton
// hosting (empty without WithAdmin).
func (c *Cluster) LeaseManagerAddrs() []string {
	return append([]string(nil), c.fix.admins...)
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	if c.Leases != nil {
		c.Leases.Stop()
	}
	all := append([]*Server{}, c.Servers...)
	if c.Admin != nil {
		all = append(all, c.Admin)
	}
	for _, s := range all {
		s.member.Stop()
		s.endpoint.Close()
		if s.queue != nil {
			s.queue.Close()
		}
		s.Naming.Close()
		if s.Files != nil {
			_ = s.Files.Close() // shutdown path; store is done either way
		}
	}
}
