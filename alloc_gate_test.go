package wls_test

// Allocation gates for the zero-alloc request path (E31). Each test pins
// the allocations/request of one tier boundary with testing.AllocsPerRun;
// the pooled request/response/session objects, reused encoders, and the
// no-alloc routing decision are what keep these numbers single-digit. The
// pins carry a little slack over the measured values (6.0 full echo, 0.0
// direct echo at the time of writing) so GC noise does not flake the
// suite, but a pooling regression of even a few allocs/request trips them.

import (
	"context"
	"testing"

	"wls"
	"wls/internal/servlet"
)

func allocGateCluster(t *testing.T) *wls.Cluster {
	t.Helper()
	c, err := wls.New(wls.Options{Servers: 3, RealClock: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	for _, s := range c.Servers {
		s.Web.Handle("/echo", func(r *servlet.Request) servlet.Response {
			return servlet.Response{Body: r.Body}
		})
		s.Web.Handle("/count", func(r *servlet.Request) servlet.Response {
			r.Session.Set("n", "1")
			return servlet.Response{Body: []byte("ok")}
		})
	}
	c.Settle(2)
	return c
}

// TestAllocGateWebtierEcho pins the full path — proxy plug-in routing, the
// RMI hop, the servlet engine, and session resolution — at no more than 10
// allocations per request with tracing disabled (the tentpole target).
func TestAllocGateWebtierEcho(t *testing.T) {
	c := allocGateCluster(t)
	proxy := c.ProxyPlugin("webserver:80")
	ctx := context.Background()
	body := []byte("hello")
	cookie := ""
	for i := 0; i < 64; i++ {
		r, err := proxy.Route(ctx, "/echo", cookie, body)
		if err != nil {
			t.Fatal(err)
		}
		cookie = r.Cookie
	}
	n := testing.AllocsPerRun(300, func() {
		r, err := proxy.Route(ctx, "/echo", cookie, body)
		if err != nil {
			t.Fatal(err)
		}
		cookie = r.Cookie
	})
	t.Logf("webtier full path (echo): %.1f allocs/request", n)
	if n > 10 {
		t.Fatalf("webtier echo path allocates %.1f/request, gate is 10", n)
	}
}

// TestAllocGateWebtierSessionWrite pins the same path with a session write,
// which adds the synchronous batched replication flush to the secondary.
func TestAllocGateWebtierSessionWrite(t *testing.T) {
	c := allocGateCluster(t)
	proxy := c.ProxyPlugin("webserver:80")
	ctx := context.Background()
	cookie := ""
	for i := 0; i < 64; i++ {
		r, err := proxy.Route(ctx, "/count", cookie, nil)
		if err != nil {
			t.Fatal(err)
		}
		cookie = r.Cookie
	}
	n := testing.AllocsPerRun(300, func() {
		r, err := proxy.Route(ctx, "/count", cookie, nil)
		if err != nil {
			t.Fatal(err)
		}
		cookie = r.Cookie
	})
	t.Logf("webtier full path (session write + replication): %.1f allocs/request", n)
	if n > 18 {
		t.Fatalf("webtier session-write path allocates %.1f/request, gate is 18", n)
	}
}

// TestAllocGateServletDirect pins the engine boundary on its own — no
// webtier, no RMI hop. The echo path must be allocation-free; the
// session-write path pays only for the replication delta.
func TestAllocGateServletDirect(t *testing.T) {
	c := allocGateCluster(t)
	eng := c.Servers[0].Web
	body := []byte("hello")

	resp := eng.Serve("/echo", "", body)
	cookie := resp.Cookie
	for i := 0; i < 64; i++ {
		cookie = eng.Serve("/echo", cookie, body).Cookie
	}
	n := testing.AllocsPerRun(300, func() {
		cookie = eng.Serve("/echo", cookie, body).Cookie
	})
	t.Logf("servlet direct (echo): %.1f allocs/request", n)
	if n > 2 {
		t.Fatalf("servlet echo path allocates %.1f/request, gate is 2", n)
	}

	for i := 0; i < 64; i++ {
		cookie = eng.Serve("/count", cookie, nil).Cookie
	}
	n = testing.AllocsPerRun(300, func() {
		cookie = eng.Serve("/count", cookie, nil).Cookie
	})
	t.Logf("servlet direct (session write + replication): %.1f allocs/request", n)
	if n > 12 {
		t.Fatalf("servlet session-write path allocates %.1f/request, gate is 12", n)
	}
}
