module wls

go 1.22
