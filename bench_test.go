// bench_test.go wires every experiment of the reproduction harness
// (internal/bench, E01–E26 — one per figure and falsifiable claim of the
// paper, see DESIGN.md) into `go test -bench`, plus a set of
// micro-benchmarks for the hot paths the experiments ride on.
//
// Run a single experiment:  go test -bench=BenchmarkE05 -benchtime=1x
// Run everything:           go test -bench=. -benchmem
package wls_test

import (
	"context"
	"fmt"
	"strconv"
	"testing"
	"time"

	"wls"
	"wls/internal/bench"
	"wls/internal/ejb"
	"wls/internal/jms"
	"wls/internal/rmi"
	"wls/internal/servlet"
)

// runExperiment executes a harness experiment once per benchmark iteration
// and logs its table (visible with -v).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table := e.Run()
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

func BenchmarkE01TierHops(b *testing.B)           { runExperiment(b, "E01") }
func BenchmarkE02LoadBalancing(b *testing.B)      { runExperiment(b, "E02") }
func BenchmarkE03Partitioning(b *testing.B)       { runExperiment(b, "E03") }
func BenchmarkE04StatelessLocality(b *testing.B)  { runExperiment(b, "E04") }
func BenchmarkE05Failover(b *testing.B)           { runExperiment(b, "E05") }
func BenchmarkE06PluginFailover(b *testing.B)     { runExperiment(b, "E06") }
func BenchmarkE07ExternalFailover(b *testing.B)   { runExperiment(b, "E07") }
func BenchmarkE08DeltaPolicy(b *testing.B)        { runExperiment(b, "E08") }
func BenchmarkE09RingPlacement(b *testing.B)      { runExperiment(b, "E09") }
func BenchmarkE10CacheConsistency(b *testing.B)   { runExperiment(b, "E10") }
func BenchmarkE11FlushCrossover(b *testing.B)     { runExperiment(b, "E11") }
func BenchmarkE12OptimisticVsLocks(b *testing.B)  { runExperiment(b, "E12") }
func BenchmarkE13Backdoor(b *testing.B)           { runExperiment(b, "E13") }
func BenchmarkE14PageCache(b *testing.B)          { runExperiment(b, "E14") }
func BenchmarkE15RowSet(b *testing.B)             { runExperiment(b, "E15") }
func BenchmarkE16SingletonMigration(b *testing.B) { runExperiment(b, "E16") }
func BenchmarkE17PartitionedQueue(b *testing.B)   { runExperiment(b, "E17") }
func BenchmarkE18Aggregation(b *testing.B)        { runExperiment(b, "E18") }
func BenchmarkE19Conversations(b *testing.B)      { runExperiment(b, "E19") }
func BenchmarkE20SAFvsRPC(b *testing.B)           { runExperiment(b, "E20") }
func BenchmarkE21InMemoryConv(b *testing.B)       { runExperiment(b, "E21") }
func BenchmarkE22Colocation(b *testing.B)         { runExperiment(b, "E22") }
func BenchmarkE23BootTime(b *testing.B)           { runExperiment(b, "E23") }
func BenchmarkE24Warehouse(b *testing.B)          { runExperiment(b, "E24") }
func BenchmarkE25Admission(b *testing.B)          { runExperiment(b, "E25") }
func BenchmarkE26Concentration(b *testing.B)      { runExperiment(b, "E26") }
func BenchmarkE27TransportHotPath(b *testing.B)   { runExperiment(b, "E27") }
func BenchmarkE29TraceOverhead(b *testing.B)      { runExperiment(b, "E29") }
func BenchmarkE33ScaleOut(b *testing.B)           { runExperiment(b, "E33") }
func BenchmarkA01HeartbeatSweep(b *testing.B)     { runExperiment(b, "A01") }
func BenchmarkA02LossyBus(b *testing.B)           { runExperiment(b, "A02") }

// --- Micro-benchmarks on the hot paths ----------------------------------------

// BenchmarkRMIInvoke measures one clustered stateless invocation end to end
// on the simulated fabric.
func BenchmarkRMIInvoke(b *testing.B) {
	c, err := wls.New(wls.Options{Servers: 3, RealClock: true})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	for _, s := range c.Servers {
		s.Registry().Register(&rmi.Service{
			Name: "Echo",
			Methods: map[string]rmi.MethodSpec{
				"echo": {Idempotent: true, Handler: func(ctx context.Context, call *rmi.Call) ([]byte, error) {
					return call.Args, nil
				}},
			},
		})
	}
	c.Settle(2)
	stub := c.Servers[0].Stub("Echo", rmi.WithPolicy(rmi.NewRoundRobin()))
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stub.Invoke(context.Background(), "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatefulInvoke measures a replicated stateful-bean call (one
// update, one synchronous delta ship).
func BenchmarkStatefulInvoke(b *testing.B) {
	c, err := wls.New(wls.Options{Servers: 3, RealClock: true})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	var home *ejb.StatefulHome
	for _, s := range c.Servers {
		h := s.EJB.DeployStateful(ejb.StatefulSpec{
			Name: "Cart",
			Methods: map[string]ejb.StatefulMethod{
				"add": func(sc *ejb.StatefulCtx, args []byte) ([]byte, error) {
					n, _ := strconv.Atoi(sc.Get("n"))
					sc.Set("n", strconv.Itoa(n+1))
					return nil, nil
				},
			},
		})
		if home == nil {
			home = h
		}
	}
	c.Settle(2)
	h, err := home.Create(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Invoke(context.Background(), "add", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServletSession measures one request through the proxy plug-in
// with replicated session state.
func BenchmarkServletSession(b *testing.B) {
	c, err := wls.New(wls.Options{Servers: 3, RealClock: true})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	for _, s := range c.Servers {
		s.Web.Handle("/n", func(r *servlet.Request) servlet.Response {
			n, _ := strconv.Atoi(r.Session.Get("n"))
			r.Session.Set("n", strconv.Itoa(n+1))
			return servlet.Response{Body: []byte("ok")}
		})
	}
	c.Settle(2)
	proxy := c.ProxyPlugin("web:80")
	resp, err := proxy.Route(context.Background(), "/n", "", nil)
	if err != nil {
		b.Fatal(err)
	}
	cookie := resp.Cookie
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err = proxy.Route(context.Background(), "/n", cookie, nil)
		if err != nil {
			b.Fatal(err)
		}
		cookie = resp.Cookie
	}
}

// BenchmarkEntityReadCached measures a TTL-cached entity read (the §3.3
// fast path).
func BenchmarkEntityReadCached(b *testing.B) {
	c, err := wls.New(wls.Options{Servers: 1, RealClock: true})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	c.DB.Put("items", "k", map[string]string{"v": "x"})
	home := c.Servers[0].EJB.DeployEntity(ejb.EntitySpec{
		Name: "Item", Table: "items", Mode: ejb.EntityTTL, TTL: time.Hour,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := home.FindReadOnly("k"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTx2PC measures a two-resource distributed commit (in-memory
// resources; the protocol cost, not the fsync cost).
func BenchmarkTx2PC(b *testing.B) {
	c, err := wls.New(wls.Options{Servers: 1, RealClock: true})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	c.DB.Put("t", "k1", map[string]string{"v": "0"})
	c.DB.Put("t", "k2", map[string]string{"v": "0"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := c.Servers[0].Tx.Begin(0)
		s1 := c.DB.Session(txn.ID())
		s1.Update("t", "k1", map[string]string{"v": fmt.Sprint(i)})
		txn.Enlist("db", s1)
		q := c.Servers[0].JMS.Queue("audit")
		if _, err := q.SendTx(txn, jms.Message{Body: []byte("audit")}); err != nil {
			b.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
