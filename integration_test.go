package wls_test

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"wls"
	"wls/internal/ejb"
	"wls/internal/jms"
	"wls/internal/rmi"
	"wls/internal/servlet"
)

// TestHotRedeployUnderTraffic exercises §3.4's "hot redeploy of application
// software": one server undeploys v1 and deploys v2 of a service while a
// client hammers it. The stub's no-such-service failover hides the gap.
func TestHotRedeployUnderTraffic(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 3, RealClock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	deploy := func(s *wls.Server, version string) {
		s.Registry().Register(&rmi.Service{
			Name: "Pricing",
			Methods: map[string]rmi.MethodSpec{
				"price": {Idempotent: true, Handler: func(ctx context.Context, call *rmi.Call) ([]byte, error) {
					return []byte(version), nil
				}},
			},
		})
	}
	for _, s := range c.Servers {
		deploy(s, "v1")
	}
	c.Settle(2)

	stub := c.Servers[1].Stub("Pricing", rmi.WithPolicy(rmi.NewRoundRobin()), rmi.WithIdempotent("price"))
	stop := make(chan struct{})
	var failures, calls int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := stub.Invoke(context.Background(), "price", nil)
			mu.Lock()
			calls++
			if err != nil {
				failures++
			}
			mu.Unlock()
		}
	}()

	// Rolling redeploy, one server at a time.
	for _, s := range c.Servers {
		s.Registry().Unregister("Pricing")
		time.Sleep(5 * time.Millisecond)
		deploy(s, "v2")
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("no traffic flowed")
	}
	if failures > 0 {
		t.Fatalf("%d/%d requests failed during hot redeploy", failures, calls)
	}
	// The new version is live everywhere.
	res, err := stub.Invoke(context.Background(), "price", nil)
	if err != nil || string(res.Body) != "v2" {
		t.Fatalf("after redeploy: %q err=%v", res.Body, err)
	}
}

// TestRollingRestartKeepsServiceAvailable exercises §3.4's "rolling
// upgrades of server software": servers restart one at a time while
// idempotent traffic keeps flowing.
func TestRollingRestartKeepsServiceAvailable(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 3, RealClock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	deploy := func(s *wls.Server) {
		name := s.Name
		s.Registry().Register(&rmi.Service{
			Name: "Inventory",
			Methods: map[string]rmi.MethodSpec{
				"check": {Idempotent: true, Handler: func(ctx context.Context, call *rmi.Call) ([]byte, error) {
					return []byte(name), nil
				}},
			},
		})
	}
	for _, s := range c.Servers {
		deploy(s)
	}
	c.Settle(2)

	for round, victim := range []string{"server-1", "server-2", "server-3"} {
		// The client runs on a server that is not currently restarting.
		clientIdx := (round + 1) % 3
		stub := c.Servers[clientIdx].Stub("Inventory",
			rmi.WithPolicy(rmi.NewRoundRobin()), rmi.WithIdempotent("check"))

		c.Crash(victim)
		for i := 0; i < 10; i++ {
			if _, err := stub.Invoke(context.Background(), "check", nil); err != nil {
				t.Fatalf("round %d: request failed during restart of %s: %v", round, victim, err)
			}
		}
		s := c.Restart(victim)
		deploy(s) // the upgraded server redeploys its applications
		c.Settle(5)
		if len(c.Servers[clientIdx].Member().Alive()) != 3 {
			t.Fatalf("round %d: %s did not rejoin", round, victim)
		}
	}
}

// TestOrderPipelineEndToEnd strings the tiers together the way Figure 1
// draws them: an HTTP request through the proxy plug-in runs a servlet
// that performs a transaction spanning the backend database and a JMS
// queue; a worker consumes the queue transactionally.
func TestOrderPipelineEndToEnd(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 2, RealClock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.DB.Put("inventory", "anvil", map[string]string{"stock": "10"})

	for _, s := range c.Servers {
		srv := s
		s.Web.Handle("/order", func(r *servlet.Request) servlet.Response {
			txn := srv.Tx.Begin(0)
			sess := c.DB.Session(txn.ID())
			row, _ := c.DB.Get("inventory", "anvil")
			var stock int
			fmt.Sscan(row.Fields["stock"], &stock)
			if stock == 0 {
				txn.Rollback()
				return servlet.Response{Status: 409, Body: []byte("sold out")}
			}
			sess.UpdateVersioned("inventory", "anvil", row.Version,
				map[string]string{"stock": strconv.Itoa(stock - 1)})
			txn.Enlist("db", sess)
			if _, err := srv.JMS.Queue("shipping").SendTx(txn, jms.Message{
				Body: []byte("ship anvil to " + r.Session.ID),
			}); err != nil {
				txn.Rollback()
				return servlet.Response{Status: 500, Body: []byte(err.Error())}
			}
			if err := txn.Commit(); err != nil {
				return servlet.Response{Status: 409, Body: []byte(err.Error())}
			}
			return servlet.Response{Body: []byte("ordered")}
		})
	}
	c.Settle(2)

	proxy := c.ProxyPlugin("web:80")
	ordered := 0
	var cookie string
	for i := 0; i < 12; i++ { // 12 attempts at 10 units: 2 sell-outs
		resp, err := proxy.Route(context.Background(), "/order", cookie, nil)
		if err != nil {
			t.Fatal(err)
		}
		cookie = resp.Cookie
		if resp.Status == 200 {
			ordered++
		}
	}
	if ordered != 10 {
		t.Fatalf("ordered %d, want exactly 10 (stock)", ordered)
	}
	row, _ := c.DB.Get("inventory", "anvil")
	if row.Fields["stock"] != "0" {
		t.Fatalf("stock = %s", row.Fields["stock"])
	}
	// Exactly the committed orders reached the shipping queue; the two
	// rejected ones left no message (atomicity across DB + JMS).
	shipped := 0
	for _, s := range c.Servers {
		shipped += s.JMS.Queue("shipping").Len()
	}
	if shipped != 10 {
		t.Fatalf("shipping queue has %d messages, want 10", shipped)
	}
}

// TestEntityCacheCoherenceAcrossWebTier drives the full read path: servlet
// → entity bean cache → backend, with a write on another server
// invalidating through the bus.
func TestEntityCacheCoherenceAcrossWebTier(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 2, RealClock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.DB.Put("catalog", "anvil", map[string]string{"price": "25"})
	var homes []*ejb.EntityHome
	for _, s := range c.Servers {
		h := s.EJB.DeployEntity(ejb.EntitySpec{
			Name: "Catalog", Table: "catalog", Mode: ejb.EntityFlushOnUpdate, TTL: time.Hour,
		})
		homes = append(homes, h)
		s.Web.Handle("/price", func(r *servlet.Request) servlet.Response {
			f, err := h.FindReadOnly("anvil")
			if err != nil {
				return servlet.Response{Status: 500}
			}
			return servlet.Response{Body: []byte(f["price"])}
		})
	}
	c.Settle(2)
	proxy := c.ProxyPlugin("web:80")

	resp, _ := proxy.Route(context.Background(), "/price", "", nil)
	if string(resp.Body) != "25" {
		t.Fatalf("price = %q", resp.Body)
	}
	// Price change through server-2's container.
	txn := c.Servers[1].Tx.Begin(0)
	e, _ := homes[1].Find(txn, "anvil")
	e.Set("price", "30")
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Every subsequent read, wherever routed, sees the new price.
	for i := 0; i < 6; i++ {
		resp, err := proxy.Route(context.Background(), "/price", "", nil)
		if err != nil || string(resp.Body) != "30" {
			t.Fatalf("read %d: %q err=%v", i, resp.Body, err)
		}
	}
}
