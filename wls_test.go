package wls_test

import (
	"context"
	"strconv"
	"testing"
	"time"

	"wls"
	"wls/internal/ejb"
	"wls/internal/jms"
	"wls/internal/rmi"
	"wls/internal/servlet"
	"wls/internal/singleton"
)

func TestClusterBootAndStatelessBean(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	for _, s := range c.Servers {
		name := s.Name
		s.EJB.DeployStateless(ejb.StatelessSpec{
			Name: "Hello",
			Methods: map[string]ejb.StatelessMethod{
				"hi": func(ctx context.Context, inst any, call *rmi.Call) ([]byte, error) {
					return []byte("hello from " + name), nil
				},
			},
		})
	}
	c.Settle(2)

	stub := c.Servers[0].Stub("Hello", rmi.WithPolicy(rmi.NewRoundRobin()))
	seen := map[string]bool{}
	for i := 0; i < 9; i++ {
		res, err := stub.Invoke(context.Background(), "hi", nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.ServedBy] = true
	}
	if len(seen) != 3 {
		t.Fatalf("spread = %d servers", len(seen))
	}
}

func TestClusterEntityBeanOverSharedDB(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.DB.Put("accounts", "a1", map[string]string{"balance": "100"})

	var homes []*ejb.EntityHome
	for _, s := range c.Servers {
		homes = append(homes, s.EJB.DeployEntity(ejb.EntitySpec{
			Name: "Account", Table: "accounts", Mode: ejb.EntityFlushOnUpdate, TTL: time.Hour,
		}))
	}
	txn := c.Servers[0].Tx.Begin(0)
	e, err := homes[0].Find(txn, "a1")
	if err != nil {
		t.Fatal(err)
	}
	e.Set("balance", "90")
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	f, err := homes[1].FindReadOnly("a1")
	if err != nil || f["balance"] != "90" {
		t.Fatalf("cross-server read: %v %v", f, err)
	}
}

func TestClusterWebTierEndToEnd(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for _, s := range c.Servers {
		s.Web.Handle("/n", func(r *servlet.Request) servlet.Response {
			n, _ := strconv.Atoi(r.Session.Get("n"))
			n++
			r.Session.Set("n", strconv.Itoa(n))
			return servlet.Response{Body: []byte(strconv.Itoa(n))}
		})
	}
	c.Settle(2)
	proxy := c.ProxyPlugin("web:80")
	resp, err := proxy.Route(context.Background(), "/n", "", nil)
	if err != nil || string(resp.Body) != "1" {
		t.Fatalf("first: %q err=%v", resp.Body, err)
	}
	resp2, err := proxy.Route(context.Background(), "/n", resp.Cookie, nil)
	if err != nil || string(resp2.Body) != "2" {
		t.Fatalf("second: %q err=%v", resp2.Body, err)
	}
}

func TestClusterSingletonViaAdmin(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 2, WithAdmin: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	h := c.Servers[0].SingletonHost(singleton.Config{Service: "q", Preferred: []string{"server-1"}},
		singleton.FuncService{})
	h.Start()
	defer h.Stop()
	c.Settle(4)
	if !h.Active() {
		t.Fatal("singleton did not activate")
	}
}

func TestClusterCrashRestart(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Crash("server-2")
	c.Settle(6)
	if len(c.Servers[0].Member().Alive()) != 1 {
		t.Fatal("crash not observed")
	}
	c.Restart("server-2")
	c.Settle(4)
	if len(c.Servers[0].Member().Alive()) != 2 {
		t.Fatal("restart not observed")
	}
}

func TestClusterJMSDefaultInMemory(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	q := c.Servers[0].JMS.Queue("orders")
	q.Send(jms.Message{Body: []byte("x")})
	m, err := q.Receive()
	if err != nil || string(m.Body) != "x" {
		t.Fatalf("receive: %v %q", err, m.Body)
	}
}

func TestClusterDurableWithDataDir(t *testing.T) {
	dir := t.TempDir()
	c, err := wls.New(wls.Options{Servers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if c.Servers[0].Files == nil {
		t.Fatal("no filestore with DataDir")
	}
	q := c.Servers[0].JMS.Queue("orders")
	if _, err := q.Send(jms.Message{Body: []byte("durable")}); err != nil {
		t.Fatal(err)
	}
}

func TestNamingAcrossServers(t *testing.T) {
	c, err := wls.New(wls.Options{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Servers[0].Naming.Bind("ejb/OrderHome", []byte("server-1"))
	v, ok := c.Servers[1].Naming.Lookup("ejb/OrderHome")
	if !ok || string(v) != "server-1" {
		t.Fatalf("lookup: %q ok=%v", v, ok)
	}
}
